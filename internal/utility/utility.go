// Package utility implements the video-utility model and incentive
// mechanism sketched in Section VII of the paper ("Video Utility and
// Incentive Mechanism").
//
// For a query Q over time window [t_s, t_e], the global utility is the
// rectangle 360° x (t_e - t_s): every viewing direction at every moment.
// A video segment contributes the sub-rectangle spanned by its angular
// coverage U_a (the directions its camera sees) and its temporal coverage
// U_t (the part of the window it records). The utility of a segment set
// is the area of the union of their rectangles — overlapping segments
// don't double-count, which makes U a non-negative monotone submodular
// set function, exactly as the paper observes.
//
// On top of the coverage function the package provides the classic greedy
// maximizers (cardinality-constrained and budgeted) and a two-phase
// online mechanism for the paper's "zero arrival-departure interval"
// setting, where contributors show up once, quote a cost, and must be
// accepted or rejected on the spot against a reserved budget.
package utility

import (
	"fmt"
	"math"
	"sort"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
)

// Window is the query's time interval.
type Window struct {
	StartMillis, EndMillis int64
}

// Valid reports whether the window is non-empty.
func (w Window) Valid() bool { return w.EndMillis > w.StartMillis }

// DurationMillis returns the window length.
func (w Window) DurationMillis() int64 { return w.EndMillis - w.StartMillis }

// GlobalUtility is the paper's 360° x (t_e - t_s) total, in
// degree-milliseconds.
func GlobalUtility(w Window) float64 {
	return 360 * float64(w.DurationMillis())
}

// Rect is one segment's utility rectangle: an angular interval crossed
// with a time interval. Angular intervals that wrap 0/360 are split into
// two rects by RectOf, so AngStart <= AngEnd always holds here.
type Rect struct {
	AngStart, AngEnd float64 // degrees, 0 <= AngStart <= AngEnd <= 360
	TStart, TEnd     int64   // millis, clipped to the window
}

// Area returns the rectangle's utility in degree-milliseconds.
func (r Rect) Area() float64 {
	if r.AngEnd <= r.AngStart || r.TEnd <= r.TStart {
		return 0
	}
	return (r.AngEnd - r.AngStart) * float64(r.TEnd-r.TStart)
}

// RectOf computes the utility rectangle(s) of a representative FoV for a
// window: the camera's angular range Theta = (theta - alpha, theta +
// alpha) crossed with the segment's overlap with the window. A range that
// crosses north is returned as two rectangles.
func RectOf(c fov.Camera, rep segment.Representative, w Window) []Rect {
	t0 := max64(rep.StartMillis, w.StartMillis)
	t1 := min64(rep.EndMillis, w.EndMillis)
	if t1 <= t0 {
		return nil
	}
	lo := geo.NormalizeDeg(rep.FoV.Theta - c.HalfAngleDeg)
	width := 2 * c.HalfAngleDeg
	if width >= 360 {
		return []Rect{{AngStart: 0, AngEnd: 360, TStart: t0, TEnd: t1}}
	}
	hi := lo + width
	if hi <= 360 {
		return []Rect{{AngStart: lo, AngEnd: hi, TStart: t0, TEnd: t1}}
	}
	// Wraps north: split.
	return []Rect{
		{AngStart: lo, AngEnd: 360, TStart: t0, TEnd: t1},
		{AngStart: 0, AngEnd: hi - 360, TStart: t0, TEnd: t1},
	}
}

// UnionArea computes the exact area of the union of rectangles by
// coordinate compression: O(n^2 log n) over the rectangle count, which is
// small for any realistic query.
func UnionArea(rects []Rect) float64 {
	var xs []float64
	var live []Rect
	for _, r := range rects {
		if r.Area() <= 0 {
			continue
		}
		live = append(live, r)
		xs = append(xs, r.AngStart, r.AngEnd)
	}
	if len(live) == 0 {
		return 0
	}
	sort.Float64s(xs)
	total := 0.0
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		if x1 <= x0 {
			continue
		}
		// Collect time intervals of rects spanning this angular slab and
		// measure their union length.
		var iv [][2]int64
		for _, r := range live {
			if r.AngStart <= x0 && r.AngEnd >= x1 {
				iv = append(iv, [2]int64{r.TStart, r.TEnd})
			}
		}
		if len(iv) == 0 {
			continue
		}
		sort.Slice(iv, func(a, b int) bool { return iv[a][0] < iv[b][0] })
		var covered int64
		curS, curE := iv[0][0], iv[0][1]
		for _, t := range iv[1:] {
			if t[0] > curE {
				covered += curE - curS
				curS, curE = t[0], t[1]
			} else if t[1] > curE {
				curE = t[1]
			}
		}
		covered += curE - curS
		total += (x1 - x0) * float64(covered)
	}
	return total
}

// Candidate is one contributable segment with its acquisition cost (the
// incentive payment its provider asks, in arbitrary currency units).
type Candidate struct {
	ID   uint64
	Rep  segment.Representative
	Cost float64
}

// SetUtility evaluates U(S) for a candidate subset.
func SetUtility(c fov.Camera, w Window, set []Candidate) float64 {
	var rects []Rect
	for _, cand := range set {
		rects = append(rects, RectOf(c, cand.Rep, w)...)
	}
	return UnionArea(rects)
}

// Selection is the result of a maximization run.
type Selection struct {
	Chosen  []Candidate
	Utility float64
	Spent   float64
}

// GreedyK picks up to k candidates maximizing coverage by the standard
// (1 - 1/e)-approximate greedy: repeatedly take the candidate with the
// largest marginal utility.
func GreedyK(c fov.Camera, w Window, cands []Candidate, k int) (Selection, error) {
	if err := validate(c, w); err != nil {
		return Selection{}, err
	}
	return greedy(c, w, cands, func(marginal, cost float64) float64 { return marginal },
		func(sel *Selection, cand Candidate) bool { return len(sel.Chosen) < k }), nil
}

// GreedyBudget picks candidates under a total cost budget, greedily by
// marginal-utility-per-cost (the standard budgeted submodular heuristic).
func GreedyBudget(c fov.Camera, w Window, cands []Candidate, budget float64) (Selection, error) {
	if err := validate(c, w); err != nil {
		return Selection{}, err
	}
	if budget < 0 || math.IsNaN(budget) {
		return Selection{}, fmt.Errorf("utility: invalid budget %v", budget)
	}
	return greedy(c, w, cands,
		func(marginal, cost float64) float64 {
			if cost <= 0 {
				return math.Inf(1)
			}
			return marginal / cost
		},
		func(sel *Selection, cand Candidate) bool { return sel.Spent+cand.Cost <= budget }), nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func validate(c fov.Camera, w Window) error {
	if err := c.Validate(); err != nil {
		return err
	}
	if !w.Valid() {
		return fmt.Errorf("utility: empty window [%d, %d)", w.StartMillis, w.EndMillis)
	}
	return nil
}

// greedy is the shared loop: score orders candidates, admissible gates
// them against the running selection.
func greedy(c fov.Camera, w Window, cands []Candidate,
	score func(marginal, cost float64) float64,
	admissible func(*Selection, Candidate) bool) Selection {

	var sel Selection
	remaining := append([]Candidate(nil), cands...)
	var rects []Rect
	for len(remaining) > 0 {
		bestIdx := -1
		bestScore := 0.0
		bestMarginal := 0.0
		for i, cand := range remaining {
			if !admissible(&sel, cand) {
				continue
			}
			marginal := UnionArea(append(rects, RectOf(c, cand.Rep, w)...)) - sel.Utility
			if marginal <= 0 {
				continue
			}
			if s := score(marginal, cand.Cost); bestIdx == -1 || s > bestScore {
				bestIdx, bestScore, bestMarginal = i, s, marginal
			}
		}
		if bestIdx == -1 {
			break
		}
		cand := remaining[bestIdx]
		rects = append(rects, RectOf(c, cand.Rep, w)...)
		sel.Chosen = append(sel.Chosen, cand)
		sel.Utility += bestMarginal
		sel.Spent += cand.Cost
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}
	return sel
}
