package utility

import (
	"math"
	"testing"
	"testing/quick"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
)

// candSpec is a quick-generatable candidate.
type candSpec struct {
	Theta      float64
	Start, Dur int64
	Cost       float64
}

func (c candSpec) candidate(id uint64) (Candidate, bool) {
	if math.IsNaN(c.Theta) || math.IsInf(c.Theta, 0) || math.IsNaN(c.Cost) || math.IsInf(c.Cost, 0) {
		return Candidate{}, false
	}
	start := c.Start
	if start < 0 {
		start = -start
	}
	start %= 60_000
	dur := c.Dur
	if dur < 0 {
		dur = -dur
	}
	dur = 1000 + dur%30_000
	return Candidate{
		ID: id,
		Rep: segment.Representative{
			FoV:         fov.FoV{P: geo.Point{Lat: 40, Lng: 116.3}, Theta: geo.NormalizeDeg(c.Theta)},
			StartMillis: start,
			EndMillis:   start + dur,
		},
		Cost: 0.5 + math.Mod(math.Abs(c.Cost), 10),
	}, true
}

func specsToCands(specs []candSpec) []Candidate {
	var out []Candidate
	for i, s := range specs {
		if c, ok := s.candidate(uint64(i + 1)); ok {
			out = append(out, c)
		}
	}
	return out
}

// TestQuickUtilityMonotoneSubmodularBounded: for every generated pool,
// U is monotone under adding a candidate, submodular in the marginal
// sense, and bounded by the global utility.
func TestQuickUtilityMonotoneSubmodularBounded(t *testing.T) {
	f := func(specs []candSpec) bool {
		cands := specsToCands(specs)
		if len(cands) < 3 {
			return true
		}
		small := cands[:len(cands)/2]
		big := cands[:len(cands)-1] // superset of small
		x := cands[len(cands)-1]

		us := SetUtility(cam, win, small)
		ub := SetUtility(cam, win, big)
		if ub < us-1e-6 {
			return false // monotonicity
		}
		if ub > GlobalUtility(win)+1e-6 {
			return false // bound
		}
		gainSmall := SetUtility(cam, win, append(append([]Candidate{}, small...), x)) - us
		gainBig := SetUtility(cam, win, append(append([]Candidate{}, big...), x)) - ub
		return gainBig <= gainSmall+1e-6 // submodularity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGreedyBudgetFeasible: greedy never overspends and never loses
// to an empty selection.
func TestQuickGreedyBudgetFeasible(t *testing.T) {
	f := func(specs []candSpec, budgetSeed float64) bool {
		cands := specsToCands(specs)
		if math.IsNaN(budgetSeed) || math.IsInf(budgetSeed, 0) {
			return true
		}
		budget := 1 + math.Mod(math.Abs(budgetSeed), 50)
		sel, err := GreedyBudget(cam, win, cands, budget)
		if err != nil {
			return false
		}
		if sel.Spent > budget+1e-9 {
			return false
		}
		if sel.Utility < 0 {
			return false
		}
		// Reported utility equals recomputed utility of the chosen set.
		return math.Abs(sel.Utility-SetUtility(cam, win, sel.Chosen)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
