package utility

import (
	"math"
	"math/rand"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
)

var (
	cam = fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}
	win = Window{StartMillis: 0, EndMillis: 60_000}
)

func repAt(theta float64, ts, te int64) segment.Representative {
	return segment.Representative{
		FoV:         fov.FoV{P: geo.Point{Lat: 40, Lng: 116.3}, Theta: theta},
		StartMillis: ts,
		EndMillis:   te,
	}
}

func TestGlobalUtility(t *testing.T) {
	if got := GlobalUtility(win); got != 360*60000 {
		t.Fatalf("GlobalUtility = %v", got)
	}
}

func TestRectOfBasics(t *testing.T) {
	rects := RectOf(cam, repAt(90, 10_000, 20_000), win)
	if len(rects) != 1 {
		t.Fatalf("got %d rects, want 1", len(rects))
	}
	r := rects[0]
	if r.AngStart != 60 || r.AngEnd != 120 {
		t.Errorf("angular range [%v, %v], want [60, 120]", r.AngStart, r.AngEnd)
	}
	if r.TStart != 10_000 || r.TEnd != 20_000 {
		t.Errorf("time range [%d, %d]", r.TStart, r.TEnd)
	}
	if r.Area() != 60*10_000 {
		t.Errorf("area = %v", r.Area())
	}
}

func TestRectOfClipsToWindow(t *testing.T) {
	rects := RectOf(cam, repAt(90, -5_000, 70_000), win)
	if len(rects) != 1 || rects[0].TStart != 0 || rects[0].TEnd != 60_000 {
		t.Fatalf("clipping failed: %+v", rects)
	}
	// Entirely outside the window: no utility.
	if rects := RectOf(cam, repAt(90, 70_000, 80_000), win); rects != nil {
		t.Fatalf("out-of-window segment got rects %+v", rects)
	}
}

func TestRectOfWrapsNorth(t *testing.T) {
	rects := RectOf(cam, repAt(10, 0, 1000), win) // covers (340, 40)
	if len(rects) != 2 {
		t.Fatalf("wrap should split into 2 rects, got %d", len(rects))
	}
	total := rects[0].Area() + rects[1].Area()
	if total != 60*1000 {
		t.Fatalf("wrapped area = %v, want %v", total, 60*1000)
	}
}

func TestUnionAreaDisjointAndOverlapping(t *testing.T) {
	a := Rect{AngStart: 0, AngEnd: 60, TStart: 0, TEnd: 1000}
	b := Rect{AngStart: 100, AngEnd: 160, TStart: 0, TEnd: 1000}
	if got := UnionArea([]Rect{a, b}); got != 120*1000 {
		t.Fatalf("disjoint union = %v", got)
	}
	c := Rect{AngStart: 30, AngEnd: 90, TStart: 500, TEnd: 1500}
	got := UnionArea([]Rect{a, c})
	want := a.Area() + c.Area() - 30*500.0
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("overlapping union = %v, want %v", got, want)
	}
	// Duplicate rect adds nothing.
	if got := UnionArea([]Rect{a, a}); got != a.Area() {
		t.Fatalf("duplicate union = %v", got)
	}
	if got := UnionArea(nil); got != 0 {
		t.Fatalf("empty union = %v", got)
	}
}

func TestSetUtilityPropertiesRandomized(t *testing.T) {
	// Monotonicity and submodularity, checked numerically on random
	// candidate pools: for S ⊂ T and any x, U(S+x) - U(S) >= U(T+x) - U(T).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		pool := randomCandidates(rng, 8)
		s := pool[:2]
		tt := pool[:5] // superset of s
		x := pool[6]

		us := SetUtility(cam, win, s)
		ut := SetUtility(cam, win, tt)
		if ut < us-1e-6 {
			t.Fatalf("trial %d: monotonicity violated: U(T)=%v < U(S)=%v", trial, ut, us)
		}
		gainS := SetUtility(cam, win, append(append([]Candidate{}, s...), x)) - us
		gainT := SetUtility(cam, win, append(append([]Candidate{}, tt...), x)) - ut
		if gainT > gainS+1e-6 {
			t.Fatalf("trial %d: submodularity violated: gainT %v > gainS %v", trial, gainT, gainS)
		}
		// Bounded by the global utility.
		if ut > GlobalUtility(win)+1e-6 {
			t.Fatalf("trial %d: utility exceeds global bound", trial)
		}
	}
}

func randomCandidates(rng *rand.Rand, n int) []Candidate {
	out := make([]Candidate, n)
	for i := range out {
		start := int64(rng.Intn(50_000))
		out[i] = Candidate{
			ID:   uint64(i + 1),
			Rep:  repAt(rng.Float64()*360, start, start+int64(1000+rng.Intn(20_000))),
			Cost: 1 + rng.Float64()*9,
		}
	}
	return out
}

func TestGreedyKPicksComplementaryAngles(t *testing.T) {
	cands := []Candidate{
		{ID: 1, Rep: repAt(0, 0, 60_000), Cost: 1},
		{ID: 2, Rep: repAt(5, 0, 60_000), Cost: 1},   // nearly duplicates 1
		{ID: 3, Rep: repAt(120, 0, 60_000), Cost: 1}, // complementary
	}
	sel, err := GreedyK(cam, win, cands, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Chosen) != 2 {
		t.Fatalf("chose %d", len(sel.Chosen))
	}
	ids := map[uint64]bool{sel.Chosen[0].ID: true, sel.Chosen[1].ID: true}
	if !ids[3] {
		t.Fatalf("greedy ignored the complementary segment: %v", ids)
	}
	if ids[1] && ids[2] {
		t.Fatal("greedy picked two near-duplicates")
	}
	if sel.Utility != 120*60_000 {
		t.Fatalf("utility = %v, want %v", sel.Utility, 120*60_000)
	}
}

func TestGreedyBudgetRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cands := randomCandidates(rng, 30)
	sel, err := GreedyBudget(cam, win, cands, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Spent > 10 {
		t.Fatalf("spent %v over budget 10", sel.Spent)
	}
	if len(sel.Chosen) == 0 || sel.Utility <= 0 {
		t.Fatalf("budgeted greedy bought nothing: %+v", sel)
	}
	// More budget never hurts.
	sel2, _ := GreedyBudget(cam, win, cands, 100)
	if sel2.Utility < sel.Utility {
		t.Fatalf("larger budget reduced utility: %v < %v", sel2.Utility, sel.Utility)
	}
}

func TestGreedyValidation(t *testing.T) {
	if _, err := GreedyK(fov.Camera{}, win, nil, 2); err == nil {
		t.Fatal("invalid camera accepted")
	}
	if _, err := GreedyK(cam, Window{5, 5}, nil, 2); err == nil {
		t.Fatal("empty window accepted")
	}
	if _, err := GreedyBudget(cam, win, nil, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestGreedyNearOptimalOnCover(t *testing.T) {
	// 6 segments tiling the circle; greedy with k=6 must achieve the
	// full 360° coverage.
	var cands []Candidate
	for i := 0; i < 6; i++ {
		cands = append(cands, Candidate{
			ID: uint64(i + 1), Rep: repAt(float64(i)*60+30, 0, 60_000), Cost: 1,
		})
	}
	sel, err := GreedyK(cam, win, cands, 6)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Utility != GlobalUtility(win) {
		t.Fatalf("tiling covers %v of %v", sel.Utility, GlobalUtility(win))
	}
}

func TestOnlineMechanism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cands := randomCandidates(rng, 200)
	budget := 40.0

	m, err := NewOnlineMechanism(cam, win, budget, len(cands), 0)
	if err != nil {
		t.Fatal(err)
	}
	bought := 0
	for _, cand := range cands {
		if m.Offer(cand) {
			bought++
		}
	}
	res := m.Result()
	if res.Spent > budget {
		t.Fatalf("online mechanism overspent: %v > %v", res.Spent, budget)
	}
	if bought != len(res.Chosen) {
		t.Fatalf("accounting mismatch: %d vs %d", bought, len(res.Chosen))
	}
	if bought == 0 {
		t.Fatal("online mechanism bought nothing")
	}
	// Competitive sanity: at least a quarter of offline greedy under the
	// same budget (loose, but catches broken thresholds).
	off, err := GreedyBudget(cam, win, cands, budget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Utility*4 < off.Utility {
		t.Fatalf("online utility %v not competitive with offline %v", res.Utility, off.Utility)
	}
}

func TestOnlineMechanismValidation(t *testing.T) {
	if _, err := NewOnlineMechanism(cam, win, 0, 10, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := NewOnlineMechanism(cam, win, 5, 0, 0); err == nil {
		t.Fatal("zero arrivals accepted")
	}
	if _, err := NewOnlineMechanism(cam, win, 5, 10, 1.5); err == nil {
		t.Fatal("bad sample fraction accepted")
	}
}

func TestOnlineSamplingPhaseBuysNothing(t *testing.T) {
	m, err := NewOnlineMechanism(cam, win, 100, 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	cands := randomCandidates(rng, 10)
	for i := 0; i < 4; i++ { // below the 50% switch point
		if m.Offer(cands[i]) {
			t.Fatal("bought during sampling phase")
		}
	}
}
