package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
	"fovr/internal/video"
)

func randUpload(rng *rand.Rand, n int) Upload {
	u := Upload{Provider: "provider-7"}
	base := geo.Point{Lat: 40.0, Lng: 116.326}
	t := int64(rng.Intn(1_000_000))
	for i := 0; i < n; i++ {
		p := geo.Offset(base, rng.Float64()*360, rng.Float64()*5000)
		dur := int64(1000 + rng.Intn(120_000))
		u.Reps = append(u.Reps, segment.Representative{
			FoV:         fov.FoV{P: p, Theta: rng.Float64() * 360},
			StartMillis: t,
			EndMillis:   t + dur,
		})
		t += dur
	}
	return u
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := randUpload(rng, 100)
	data, err := EncodeBinary(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provider != u.Provider || len(got.Reps) != len(u.Reps) {
		t.Fatalf("shape mismatch: %q/%d vs %q/%d", got.Provider, len(got.Reps), u.Provider, len(u.Reps))
	}
	for i := range u.Reps {
		a, b := u.Reps[i], got.Reps[i]
		if math.Abs(a.FoV.P.Lat-b.FoV.P.Lat) > 1.1e-7 || math.Abs(a.FoV.P.Lng-b.FoV.P.Lng) > 1.1e-7 {
			t.Fatalf("rep %d: position error beyond fixed-point precision", i)
		}
		if geo.AngleDiff(a.FoV.Theta, b.FoV.Theta) > 0.006 {
			t.Fatalf("rep %d: theta error %v beyond centidegree", i, geo.AngleDiff(a.FoV.Theta, b.FoV.Theta))
		}
		if a.StartMillis != b.StartMillis || a.EndMillis != b.EndMillis {
			t.Fatalf("rep %d: interval changed", i)
		}
	}
}

func TestBinaryEmptyUpload(t *testing.T) {
	u := Upload{Provider: "p"}
	data, err := EncodeBinary(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Provider != "p" || len(got.Reps) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestBinarySizePerRep(t *testing.T) {
	// The content-free descriptor must be tens of bytes per segment —
	// this is the abstract's headline claim.
	rng := rand.New(rand.NewSource(2))
	u := randUpload(rng, 1000)
	data, err := EncodeBinary(u)
	if err != nil {
		t.Fatal(err)
	}
	perRep := float64(len(data)) / 1000
	if perRep > 24 {
		t.Fatalf("binary encoding uses %.1f bytes/rep; want <= 24", perRep)
	}
	// And it must beat JSON by a wide margin.
	js, err := json.Marshal(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(data)*3 > len(js) {
		t.Fatalf("binary %d B vs JSON %d B: expected >= 3x saving", len(data), len(js))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("not the format"),
		{0, 0, 0, 0},
	}
	for i, data := range cases {
		if _, err := DecodeBinary(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, err := EncodeBinary(randUpload(rng, 10))
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail, never panic.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeBinary(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must fail too.
	if _, err := DecodeBinary(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDecodeRejectsFuzzedMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig, err := EncodeBinary(randUpload(rng, 20))
	if err != nil {
		t.Fatal(err)
	}
	// Random single-byte mutations either decode to *valid* reps or
	// error; they never panic and never produce invalid FoVs.
	for trial := 0; trial < 2000; trial++ {
		data := append([]byte{}, orig...)
		data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		u, err := DecodeBinary(data)
		if err != nil {
			continue
		}
		for i, r := range u.Reps {
			if err := r.FoV.Validate(); err != nil {
				t.Fatalf("trial %d: decoded invalid rep %d: %v", trial, i, err)
			}
			if r.EndMillis < r.StartMillis {
				t.Fatalf("trial %d: decoded inverted interval", trial)
			}
		}
	}
}

func TestEncodeValidation(t *testing.T) {
	if _, err := EncodeBinary(Upload{Provider: strings.Repeat("x", MaxProviderLen+1)}); err == nil {
		t.Fatal("oversized provider accepted")
	}
	bad := Upload{Provider: "p", Reps: []segment.Representative{{
		FoV:         fov.FoV{P: geo.Point{Lat: 99, Lng: 0}},
		StartMillis: 0, EndMillis: 1,
	}}}
	if _, err := EncodeBinary(bad); err == nil {
		t.Fatal("invalid FoV accepted")
	}
	inverted := Upload{Provider: "p", Reps: []segment.Representative{{
		FoV:         fov.FoV{P: geo.Point{Lat: 40, Lng: 116}},
		StartMillis: 10, EndMillis: 5,
	}}}
	if _, err := EncodeBinary(inverted); err == nil {
		t.Fatal("inverted interval accepted")
	}
}

func TestTrafficMeter(t *testing.T) {
	var m TrafficMeter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.AddSent(3)
				m.AddReceived(5)
			}
		}()
	}
	wg.Wait()
	if m.Sent() != 24000 || m.Received() != 40000 {
		t.Fatalf("sent %d received %d", m.Sent(), m.Received())
	}
	m.Reset()
	if m.Sent() != 0 || m.Received() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestRawVideoBytes(t *testing.T) {
	// 60 s of 480p at 30 fps, H.264-ish 0.1 bpp: ~9.2 MB.
	got := RawVideoBytes(video.R480, 30, 60, 0.1)
	want := int64(854 * 480 * 30 * 60 / 80)
	if got != want {
		t.Fatalf("RawVideoBytes = %d, want %d", got, want)
	}
	// The descriptor-vs-video gap that motivates the whole system: a
	// 60 s walking video segments into a handful of reps (~tens of
	// bytes); raw video is 5+ orders of magnitude larger.
	if got < 1_000_000 {
		t.Fatal("video size model implausibly small")
	}
}

func TestCameraBlockRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	u := randUpload(rng, 5)
	u.Camera = fov.Camera{HalfAngleDeg: 35.25, RadiusMeters: 72.5}
	data, err := EncodeBinary(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Camera != u.Camera {
		t.Fatalf("camera round trip: %+v vs %+v", got.Camera, u.Camera)
	}
	// Without a camera the zero value survives.
	u.Camera = fov.Camera{}
	data, err = EncodeBinary(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Camera != (fov.Camera{}) {
		t.Fatalf("phantom camera decoded: %+v", got.Camera)
	}
}

func TestEncodeRejectsInvalidCamera(t *testing.T) {
	u := Upload{Provider: "p", Camera: fov.Camera{HalfAngleDeg: 120, RadiusMeters: 10}}
	if _, err := EncodeBinary(u); err == nil {
		t.Fatal("invalid camera accepted")
	}
}

func TestDecodeVersion1Compat(t *testing.T) {
	// Hand-build a v1 payload: magic 'FoV'+1, provider, count, one rep.
	var buf bytes.Buffer
	buf.WriteString("FoV")
	buf.WriteByte(1)
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) { n := binary.PutUvarint(tmp[:], v); buf.Write(tmp[:n]) }
	put(1)
	buf.WriteString("p")
	put(1) // one rep
	var fixed [10]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(int32(40_0000000)))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(int32(116_3000000)))
	binary.LittleEndian.PutUint16(fixed[8:], 9000) // 90.00 degrees
	buf.Write(fixed[:])
	put(1000) // start
	put(500)  // duration

	u, err := DecodeBinary(buf.Bytes())
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if u.Provider != "p" || len(u.Reps) != 1 || u.Camera != (fov.Camera{}) {
		t.Fatalf("v1 decode = %+v", u)
	}
	if u.Reps[0].FoV.Theta != 90 || u.Reps[0].EndMillis != 1500 {
		t.Fatalf("v1 rep = %+v", u.Reps[0])
	}
	// Unknown versions are rejected.
	bad := append([]byte{}, buf.Bytes()...)
	bad[3] = 9
	if _, err := DecodeBinary(bad); err == nil {
		t.Fatal("unknown version accepted")
	}
}
