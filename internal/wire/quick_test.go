package wire

import (
	"math"
	"testing"
	"testing/quick"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
)

// repSpec is a quick-generatable representative.
type repSpec struct {
	Lat, Lng, Theta float64
	Start, Dur      int64
}

func (r repSpec) rep() (segment.Representative, bool) {
	for _, v := range []float64{r.Lat, r.Lng, r.Theta} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return segment.Representative{}, false
		}
	}
	start := r.Start
	if start < 0 {
		start = -start
	}
	start %= 1 << 50
	dur := r.Dur
	if dur < 0 {
		dur = -dur
	}
	dur %= 1 << 30
	return segment.Representative{
		FoV: fov.FoV{
			P: geo.Point{
				Lat: math.Mod(r.Lat, 90),
				Lng: math.Mod(r.Lng, 180),
			},
			Theta: geo.NormalizeDeg(r.Theta),
		},
		StartMillis: start,
		EndMillis:   start + dur,
	}, true
}

// TestQuickRoundTripPreservesSemantics: encode/decode of any valid upload
// preserves identity exactly and pose within fixed-point precision.
func TestQuickRoundTripPreservesSemantics(t *testing.T) {
	f := func(specs []repSpec, provSeed uint8) bool {
		u := Upload{Provider: string(rune('a' + provSeed%26))}
		for _, s := range specs {
			rep, ok := s.rep()
			if !ok {
				continue
			}
			u.Reps = append(u.Reps, rep)
		}
		data, err := EncodeBinary(u)
		if err != nil {
			return false
		}
		got, err := DecodeBinary(data)
		if err != nil {
			return false
		}
		if got.Provider != u.Provider || len(got.Reps) != len(u.Reps) {
			return false
		}
		for i := range u.Reps {
			a, b := u.Reps[i], got.Reps[i]
			if a.StartMillis != b.StartMillis || a.EndMillis != b.EndMillis {
				return false
			}
			if math.Abs(a.FoV.P.Lat-b.FoV.P.Lat) > 1.1e-7 ||
				math.Abs(a.FoV.P.Lng-b.FoV.P.Lng) > 1.1e-7 {
				return false
			}
			if geo.AngleDiff(a.FoV.Theta, b.FoV.Theta) > 0.006 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics: arbitrary bytes either decode to valid
// uploads or fail cleanly.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		u, err := DecodeBinary(data)
		if err != nil {
			return true
		}
		for _, r := range u.Reps {
			if r.FoV.Validate() != nil || r.EndMillis < r.StartMillis {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
