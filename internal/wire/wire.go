// Package wire defines the client-server encoding of FoV uploads and the
// traffic accounting behind the paper's "networking traffic between the
// client and the server is negligible" claim.
//
// Two codecs are provided. The compact binary codec is what a bandwidth-
// conscious mobile client would send: fixed-point coordinates (1e-7
// degree, ~1.1 cm), centidegree azimuths, and varint-delta timestamps —
// about 20 bytes per video segment, versus megabytes for the segment's
// pixels. The JSON codec is the debuggable alternative the HTTP API also
// accepts. Both round-trip exactly at the declared precision.
package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
)

// Upload is one client contribution: the provider's identity plus the
// representative FoVs of the segments it recorded, and optionally the
// device's viewing geometry (format v2) so the cloud can filter with the
// real optics instead of a deployment default.
type Upload struct {
	Provider string                   `json:"provider"`
	Reps     []segment.Representative `json:"reps"`
	// Camera is the capturing device's optics; the zero value omits it.
	Camera fov.Camera `json:"camera,omitempty"`
}

// magicPrefix identifies the binary format; a version byte follows it.
// Version 1 uploads have no flags/camera block; version 2 adds a flag
// byte after the provider, with bit 0 indicating a camera block
// (half-angle in centidegrees u16, radius in centimeters u32).
var magicPrefix = [3]byte{'F', 'o', 'V'}

const (
	version1 = 1
	version2 = 2
)

// maxCameraRadiusMeters bounds the encodable radius (u32 centimeters).
const maxCameraRadiusMeters = 42_949_672

// Encoding limits; uploads beyond these are malformed.
const (
	MaxProviderLen = 256
	MaxReps        = 1 << 20
)

// coordinate fixed-point scale: 1e-7 degrees.
const coordScale = 1e7

// theta fixed-point scale: centidegrees.
const thetaScale = 100

// EncodeBinary serializes an upload in the compact binary format.
func EncodeBinary(u Upload) ([]byte, error) {
	if len(u.Provider) > MaxProviderLen {
		return nil, fmt.Errorf("wire: provider name %d bytes exceeds %d", len(u.Provider), MaxProviderLen)
	}
	if len(u.Reps) > MaxReps {
		return nil, fmt.Errorf("wire: %d reps exceed %d", len(u.Reps), MaxReps)
	}
	hasCamera := u.Camera != (fov.Camera{})
	if hasCamera {
		if err := u.Camera.Validate(); err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
		if u.Camera.RadiusMeters > maxCameraRadiusMeters {
			return nil, fmt.Errorf("wire: camera radius %v exceeds format limit", u.Camera.RadiusMeters)
		}
	}
	var buf bytes.Buffer
	buf.Write(magicPrefix[:])
	buf.WriteByte(version2)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUvarint(uint64(len(u.Provider)))
	buf.WriteString(u.Provider)
	var flags byte
	if hasCamera {
		flags |= 1
	}
	buf.WriteByte(flags)
	if hasCamera {
		var cb [6]byte
		binary.LittleEndian.PutUint16(cb[0:], uint16(math.Round(u.Camera.HalfAngleDeg*100)))
		binary.LittleEndian.PutUint32(cb[2:], uint32(math.Round(u.Camera.RadiusMeters*100)))
		buf.Write(cb[:])
	}
	putUvarint(uint64(len(u.Reps)))
	for i, r := range u.Reps {
		if err := r.FoV.Validate(); err != nil {
			return nil, fmt.Errorf("wire: rep %d: %w", i, err)
		}
		if r.EndMillis < r.StartMillis || r.StartMillis < 0 {
			return nil, fmt.Errorf("wire: rep %d: bad interval [%d, %d]", i, r.StartMillis, r.EndMillis)
		}
		var fixed [10]byte
		binary.LittleEndian.PutUint32(fixed[0:], uint32(int32(math.Round(r.FoV.P.Lat*coordScale))))
		binary.LittleEndian.PutUint32(fixed[4:], uint32(int32(math.Round(r.FoV.P.Lng*coordScale))))
		binary.LittleEndian.PutUint16(fixed[8:], uint16(math.Round(geo.NormalizeDeg(r.FoV.Theta)*thetaScale))%36000)
		buf.Write(fixed[:])
		putUvarint(uint64(r.StartMillis))
		putUvarint(uint64(r.EndMillis - r.StartMillis))
	}
	return buf.Bytes(), nil
}

// ErrBadMagic reports a payload that is not the binary upload format.
var ErrBadMagic = errors.New("wire: bad magic")

// DecodeBinary parses the compact binary format.
func DecodeBinary(data []byte) (Upload, error) {
	r := bytes.NewReader(data)
	var m [3]byte
	if _, err := io.ReadFull(r, m[:]); err != nil || m != magicPrefix {
		return Upload{}, ErrBadMagic
	}
	ver, err := r.ReadByte()
	if err != nil || (ver != version1 && ver != version2) {
		return Upload{}, ErrBadMagic
	}
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(r) }

	n, err := readUvarint()
	if err != nil || n > MaxProviderLen {
		return Upload{}, fmt.Errorf("wire: bad provider length")
	}
	prov := make([]byte, n)
	if _, err := io.ReadFull(r, prov); err != nil {
		return Upload{}, fmt.Errorf("wire: truncated provider: %w", err)
	}
	var cam fov.Camera
	if ver == version2 {
		flags, err := r.ReadByte()
		if err != nil {
			return Upload{}, fmt.Errorf("wire: truncated flags")
		}
		if flags&^byte(1) != 0 {
			return Upload{}, fmt.Errorf("wire: unknown flags %#x", flags)
		}
		if flags&1 != 0 {
			var cb [6]byte
			if _, err := io.ReadFull(r, cb[:]); err != nil {
				return Upload{}, fmt.Errorf("wire: truncated camera: %w", err)
			}
			cam = fov.Camera{
				HalfAngleDeg: float64(binary.LittleEndian.Uint16(cb[0:])) / 100,
				RadiusMeters: float64(binary.LittleEndian.Uint32(cb[2:])) / 100,
			}
			if err := cam.Validate(); err != nil {
				return Upload{}, fmt.Errorf("wire: %w", err)
			}
		}
	}
	count, err := readUvarint()
	if err != nil || count > MaxReps {
		return Upload{}, fmt.Errorf("wire: bad rep count")
	}
	u := Upload{Provider: string(prov), Camera: cam, Reps: make([]segment.Representative, 0, count)}
	for i := uint64(0); i < count; i++ {
		var fixed [10]byte
		if _, err := io.ReadFull(r, fixed[:]); err != nil {
			return Upload{}, fmt.Errorf("wire: truncated rep %d: %w", i, err)
		}
		lat := float64(int32(binary.LittleEndian.Uint32(fixed[0:]))) / coordScale
		lng := float64(int32(binary.LittleEndian.Uint32(fixed[4:]))) / coordScale
		theta := float64(binary.LittleEndian.Uint16(fixed[8:])) / thetaScale
		start, err := readUvarint()
		if err != nil {
			return Upload{}, fmt.Errorf("wire: truncated start %d", i)
		}
		dur, err := readUvarint()
		if err != nil {
			return Upload{}, fmt.Errorf("wire: truncated duration %d", i)
		}
		if start > math.MaxInt64 || dur > math.MaxInt64-start {
			return Upload{}, fmt.Errorf("wire: interval overflow in rep %d", i)
		}
		rep := segment.Representative{
			FoV:         fovOf(lat, lng, theta),
			StartMillis: int64(start),
			EndMillis:   int64(start + dur),
		}
		if err := rep.FoV.Validate(); err != nil {
			return Upload{}, fmt.Errorf("wire: rep %d: %w", i, err)
		}
		u.Reps = append(u.Reps, rep)
	}
	if r.Len() != 0 {
		return Upload{}, fmt.Errorf("wire: %d trailing bytes", r.Len())
	}
	return u, nil
}

// RepWireBytes is the binary size of one representative FoV, assuming
// 2-byte varints for the duration and 6-byte varints for absolute
// millisecond timestamps: 10 fixed + ~8 varint = ~18 bytes. The paper's
// descriptor-size comparison uses the exact measured size instead; this
// constant is only a documentation-grade estimate.
const RepWireBytes = 18

func fovOf(lat, lng, theta float64) fov.FoV {
	return fov.FoV{P: geo.Point{Lat: lat, Lng: lng}, Theta: theta}
}
