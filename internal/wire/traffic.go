package wire

import (
	"sync/atomic"

	"fovr/internal/video"
)

// TrafficMeter counts bytes crossing the client-server boundary. It is
// safe for concurrent use; the server and client both hold one so the
// benchmarks can report the exact networking cost of the content-free
// scheme.
type TrafficMeter struct {
	sent     atomic.Int64
	received atomic.Int64
}

// AddSent records outgoing bytes.
func (m *TrafficMeter) AddSent(n int) { m.sent.Add(int64(n)) }

// AddReceived records incoming bytes.
func (m *TrafficMeter) AddReceived(n int) { m.received.Add(int64(n)) }

// Sent returns total outgoing bytes.
func (m *TrafficMeter) Sent() int64 { return m.sent.Load() }

// Received returns total incoming bytes.
func (m *TrafficMeter) Received() int64 { return m.received.Load() }

// Reset zeroes both counters.
func (m *TrafficMeter) Reset() {
	m.sent.Store(0)
	m.received.Store(0)
}

// RawVideoBytes estimates the size of the raw video a data-centric
// system would have uploaded instead of the descriptor: durationSec of
// footage at the given resolution and frame rate, with bitsPerPixel of
// codec output (H.264 street footage runs ~0.1 bit/pixel; raw grayscale
// is 8). This is the denominator of the paper's traffic-reduction claim.
func RawVideoBytes(res video.Resolution, fps, durationSec, bitsPerPixel float64) int64 {
	return int64(float64(res.Pixels()) * fps * durationSec * bitsPerPixel / 8)
}
