// Package trace simulates the sensor side of mobile video capture: it
// produces the timestamped (t_i, p_i, theta_i) sample streams that the
// paper's Android client collects "at the backstage" while recording
// (Section II-C).
//
// The paper's evaluation captures walking, driving, biking and
// rotating-in-place footage with an HTC One; this package provides the
// corresponding mobility models plus configurable GPS/compass noise, so
// every experiment runs on the identical (t, p, theta) code path that
// real sensors would feed. All generators are deterministic given their
// *rand.Rand.
package trace

import (
	"fmt"
	"math"
	"math/rand"

	"fovr/internal/fov"
	"fovr/internal/geo"
)

// Config holds the sampling parameters shared by all mobility models.
type Config struct {
	// SampleHz is the sensor fusion rate. Must be positive. Typical
	// phones deliver fused GPS/compass at 1-30 Hz.
	SampleHz float64
	// StartMillis is the capture start time.
	StartMillis int64
}

// DefaultConfig samples at 10 Hz from time zero.
var DefaultConfig = Config{SampleHz: 10}

// Validate reports whether the config is usable.
func (c Config) Validate() error {
	if !(c.SampleHz > 0) || math.IsInf(c.SampleHz, 0) {
		return fmt.Errorf("trace: sample rate %v must be positive and finite", c.SampleHz)
	}
	if c.StartMillis < 0 {
		return fmt.Errorf("trace: negative start time %d", c.StartMillis)
	}
	return nil
}

func (c Config) steps(durationSec float64) int {
	return int(math.Floor(durationSec*c.SampleHz)) + 1
}

func (c Config) timeAt(i int) int64 {
	return c.StartMillis + int64(float64(i)*1000/c.SampleHz)
}

// RotateInPlace captures the paper's rotation experiment (Fig. 5(a)): the
// camera stays at p and pans at degPerSec for durationSec seconds,
// starting from startThetaDeg.
func RotateInPlace(cfg Config, p geo.Point, startThetaDeg, degPerSec, durationSec float64) ([]fov.Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.steps(durationSec)
	out := make([]fov.Sample, n)
	for i := 0; i < n; i++ {
		dt := float64(i) / cfg.SampleHz
		out[i] = fov.Sample{
			UnixMillis: cfg.timeAt(i),
			P:          p,
			Theta:      geo.NormalizeDeg(startThetaDeg + degPerSec*dt),
		}
	}
	return out, nil
}

// Straight captures uniform linear motion (the walking and driving
// experiments of Figs. 4 and 5(b)): the device moves from start along
// headingDeg at speedMps, while the camera faces headingDeg +
// camOffsetDeg. camOffsetDeg = 0 is the paper's theta_p = 0 case (filming
// ahead), camOffsetDeg = 90 is theta_p = 90 (filming sideways).
func Straight(cfg Config, start geo.Point, headingDeg, camOffsetDeg, speedMps, durationSec float64) ([]fov.Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if speedMps < 0 {
		return nil, fmt.Errorf("trace: negative speed %v", speedMps)
	}
	n := cfg.steps(durationSec)
	out := make([]fov.Sample, n)
	theta := geo.NormalizeDeg(headingDeg + camOffsetDeg)
	for i := 0; i < n; i++ {
		dt := float64(i) / cfg.SampleHz
		out[i] = fov.Sample{
			UnixMillis: cfg.timeAt(i),
			P:          geo.Offset(start, headingDeg, speedMps*dt),
			Theta:      theta,
		}
	}
	return out, nil
}

// Waypoints follows a polyline at constant speed; the camera faces the
// instantaneous heading. Heading changes happen at the corners, which is
// how the bike-ride-with-a-right-turn scenario of Fig. 5(c) is scripted.
func Waypoints(cfg Config, points []geo.Point, speedMps float64) ([]fov.Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(points) < 2 {
		return nil, fmt.Errorf("trace: need at least 2 waypoints, got %d", len(points))
	}
	if !(speedMps > 0) {
		return nil, fmt.Errorf("trace: speed %v must be positive", speedMps)
	}
	var out []fov.Sample
	i := 0
	// Walk the polyline accumulating distance; emit a sample every
	// speed/hz meters.
	stepMeters := speedMps / cfg.SampleHz
	pos := points[0]
	segIdx := 0
	heading := geo.Bearing(points[0], points[1])
	remaining := geo.Distance(points[0], points[1])
	for {
		out = append(out, fov.Sample{UnixMillis: cfg.timeAt(i), P: pos, Theta: heading})
		i++
		need := stepMeters
		for need > 0 {
			if remaining >= need {
				pos = geo.Offset(pos, heading, need)
				remaining -= need
				need = 0
			} else {
				need -= remaining
				segIdx++
				if segIdx >= len(points)-1 {
					return out, nil
				}
				pos = points[segIdx]
				heading = geo.Bearing(points[segIdx], points[segIdx+1])
				remaining = geo.Distance(points[segIdx], points[segIdx+1])
			}
		}
	}
}

// RandomWalk wanders from start with heading drift — the generic
// pedestrian capture used by segmentation tests and workload generation.
func RandomWalk(cfg Config, rng *rand.Rand, start geo.Point, speedMps, driftDegPerStep, durationSec float64) ([]fov.Sample, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.steps(durationSec)
	out := make([]fov.Sample, n)
	p := start
	heading := rng.Float64() * 360
	for i := 0; i < n; i++ {
		out[i] = fov.Sample{UnixMillis: cfg.timeAt(i), P: p, Theta: geo.NormalizeDeg(heading)}
		heading += (rng.Float64()*2 - 1) * driftDegPerStep
		p = geo.Offset(p, heading, speedMps/cfg.SampleHz)
	}
	return out, nil
}

// Noise is the sensor error model: zero-mean Gaussian position error with
// the given standard deviation in meters (in a uniformly random
// direction) and zero-mean Gaussian compass error in degrees. COTS phone
// GPS is sigma ~ 2-5 m; fused compasses are sigma ~ 2-5 degrees.
type Noise struct {
	GPSMeters  float64
	CompassDeg float64
}

// DefaultNoise matches a mid-range phone outdoors.
var DefaultNoise = Noise{GPSMeters: 2.5, CompassDeg: 3}

// Apply returns a noisy copy of the samples. The input is not modified.
func (n Noise) Apply(rng *rand.Rand, samples []fov.Sample) []fov.Sample {
	out := make([]fov.Sample, len(samples))
	for i, s := range samples {
		if n.GPSMeters > 0 {
			dir := rng.Float64() * 360
			dist := math.Abs(rng.NormFloat64()) * n.GPSMeters
			s.P = geo.Offset(s.P, dir, dist)
		}
		if n.CompassDeg > 0 {
			s.Theta = geo.NormalizeDeg(s.Theta + rng.NormFloat64()*n.CompassDeg)
		}
		out[i] = s
	}
	return out
}

// FoVs projects a sample stream to its FoV sequence.
func FoVs(samples []fov.Sample) []fov.FoV {
	out := make([]fov.FoV, len(samples))
	for i, s := range samples {
		out[i] = s.FoV()
	}
	return out
}
