package trace

import (
	"fovr/internal/fov"
	"fovr/internal/geo"
)

// This file scripts the exact capture scenarios of the paper's
// evaluation (Section VI-B), so the figure-regeneration benchmarks and
// the examples can reference them by name.

// ScenarioOrigin anchors all scripted scenarios (the Tsinghua campus,
// roughly, matching the authors' environment).
var ScenarioOrigin = geo.Point{Lat: 40.0, Lng: 116.326}

// WalkAhead is the Fig. 4 theta_p = 0 experiment: walking down the
// street filming straight ahead, 60 s at 1.4 m/s.
func WalkAhead(cfg Config) ([]fov.Sample, error) {
	return Straight(cfg, ScenarioOrigin, 0, 0, 1.4, 60)
}

// WalkSideways is the Fig. 4 theta_p = 90 experiment: walking the same
// street filming sideways.
func WalkSideways(cfg Config) ([]fov.Sample, error) {
	return Straight(cfg, ScenarioOrigin, 0, 90, 1.4, 60)
}

// Rotation is the Fig. 5(a) experiment: holding position and panning a
// full turn at 6 degrees per second.
func Rotation(cfg Config) ([]fov.Sample, error) {
	return RotateInPlace(cfg, ScenarioOrigin, 0, 6, 60)
}

// DriveStraight is the Fig. 5(b) experiment: driving down the street at
// 12 m/s filming the view in front of the car (R = 100 m in the paper).
func DriveStraight(cfg Config) ([]fov.Sample, error) {
	return Straight(cfg, ScenarioOrigin, 0, 0, 12, 30)
}

// BikeWithTurn is the Fig. 5(c) experiment: riding through a residential
// area and turning right halfway, which splits the similarity matrix
// into the four-block pattern the paper shows.
func BikeWithTurn(cfg Config) ([]fov.Sample, error) {
	mid := geo.Offset(ScenarioOrigin, 0, 150) // ride 150 m north
	end := geo.Offset(mid, 90, 150)           // then 150 m east
	return Waypoints(cfg, []geo.Point{ScenarioOrigin, mid, end}, 5)
}
