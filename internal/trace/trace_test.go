package trace

import (
	"math"
	"math/rand"
	"testing"

	"fovr/internal/geo"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{SampleHz: 0},
		{SampleHz: -5},
		{SampleHz: math.Inf(1)},
		{SampleHz: 10, StartMillis: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRotateInPlace(t *testing.T) {
	p := geo.Point{Lat: 40, Lng: 116.3}
	samples, err := RotateInPlace(Config{SampleHz: 2}, p, 10, 6, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 21 { // 10 s at 2 Hz inclusive
		t.Fatalf("got %d samples, want 21", len(samples))
	}
	for i, s := range samples {
		if s.P != p {
			t.Fatal("rotation moved the camera")
		}
		wantTheta := geo.NormalizeDeg(10 + 6*float64(i)/2)
		if geo.AngleDiff(s.Theta, wantTheta) > 1e-9 {
			t.Fatalf("sample %d theta = %v, want %v", i, s.Theta, wantTheta)
		}
		if s.UnixMillis != int64(i)*500 {
			t.Fatalf("sample %d time = %d, want %d", i, s.UnixMillis, int64(i)*500)
		}
	}
}

func TestRotationWrapsPast360(t *testing.T) {
	p := geo.Point{Lat: 40, Lng: 116.3}
	samples, err := RotateInPlace(Config{SampleHz: 1}, p, 350, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{350, 10, 30}
	for i, s := range samples {
		if geo.AngleDiff(s.Theta, want[i]) > 1e-9 {
			t.Fatalf("sample %d theta = %v, want %v", i, s.Theta, want[i])
		}
	}
}

func TestStraightMotion(t *testing.T) {
	start := geo.Point{Lat: 40, Lng: 116.3}
	samples, err := Straight(Config{SampleHz: 1}, start, 90, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 11 {
		t.Fatalf("got %d samples", len(samples))
	}
	// Last sample is 20 m east of start.
	d := geo.Distance(start, samples[10].P)
	if math.Abs(d-20) > 0.1 {
		t.Fatalf("traveled %v m, want 20", d)
	}
	if geo.AngleDiff(geo.Bearing(start, samples[10].P), 90) > 0.1 {
		t.Fatal("did not travel east")
	}
	for _, s := range samples {
		if s.Theta != 90 {
			t.Fatal("camera offset 0 must face the heading")
		}
	}
}

func TestStraightCameraOffset(t *testing.T) {
	start := geo.Point{Lat: 40, Lng: 116.3}
	samples, err := Straight(Config{SampleHz: 1}, start, 0, 90, 1.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if s.Theta != 90 {
			t.Fatalf("theta = %v, want 90 (heading 0 + offset 90)", s.Theta)
		}
	}
	if err := func() error {
		_, err := Straight(Config{SampleHz: 1}, start, 0, 0, -1, 5)
		return err
	}(); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestWaypointsFollowsCorners(t *testing.T) {
	cfg := Config{SampleHz: 1}
	a := geo.Point{Lat: 40, Lng: 116.3}
	b := geo.Offset(a, 0, 50)  // 50 m north
	c := geo.Offset(b, 90, 50) // then 50 m east
	samples, err := Waypoints(cfg, []geo.Point{a, b, c}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 100 m at 5 m/s = 20 s -> 20-21 samples.
	if len(samples) < 19 || len(samples) > 22 {
		t.Fatalf("got %d samples, want ~20", len(samples))
	}
	// First half heads north (theta 0), second half east (theta 90).
	if geo.AngleDiff(samples[2].Theta, 0) > 1 {
		t.Fatalf("early heading = %v, want 0", samples[2].Theta)
	}
	last := samples[len(samples)-1]
	if geo.AngleDiff(last.Theta, 90) > 1 {
		t.Fatalf("late heading = %v, want 90", last.Theta)
	}
	// Timestamps strictly increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].UnixMillis <= samples[i-1].UnixMillis {
			t.Fatal("timestamps not increasing")
		}
	}
}

func TestWaypointsValidation(t *testing.T) {
	a := geo.Point{Lat: 40, Lng: 116.3}
	if _, err := Waypoints(Config{SampleHz: 1}, []geo.Point{a}, 5); err == nil {
		t.Fatal("single waypoint accepted")
	}
	if _, err := Waypoints(Config{SampleHz: 1}, []geo.Point{a, geo.Offset(a, 0, 10)}, 0); err == nil {
		t.Fatal("zero speed accepted")
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	start := geo.Point{Lat: 40, Lng: 116.3}
	a, err := RandomWalk(Config{SampleHz: 5}, rand.New(rand.NewSource(1)), start, 1.4, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := RandomWalk(Config{SampleHz: 5}, rand.New(rand.NewSource(1)), start, 1.4, 5, 20)
	if len(a) != len(b) || len(a) != 101 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different walks")
		}
	}
	c, _ := RandomWalk(Config{SampleHz: 5}, rand.New(rand.NewSource(2)), start, 1.4, 5, 20)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical walks")
	}
}

func TestNoiseStatistics(t *testing.T) {
	start := geo.Point{Lat: 40, Lng: 116.3}
	clean, err := Straight(Config{SampleHz: 10}, start, 0, 0, 1.4, 100)
	if err != nil {
		t.Fatal(err)
	}
	n := Noise{GPSMeters: 3, CompassDeg: 4}
	noisy := n.Apply(rand.New(rand.NewSource(5)), clean)
	if len(noisy) != len(clean) {
		t.Fatal("noise changed sample count")
	}
	var sumPos, sumTheta float64
	for i := range clean {
		sumPos += geo.Distance(clean[i].P, noisy[i].P)
		sumTheta += geo.AngleDiff(clean[i].Theta, noisy[i].Theta)
	}
	meanPos := sumPos / float64(len(clean))
	meanTheta := sumTheta / float64(len(clean))
	// |N(0, s)| has mean s*sqrt(2/pi) ~ 0.8 s.
	if meanPos < 1.2 || meanPos > 3.6 {
		t.Fatalf("mean GPS displacement %v m implausible for sigma 3", meanPos)
	}
	if meanTheta < 1.6 || meanTheta > 4.8 {
		t.Fatalf("mean compass error %v deg implausible for sigma 4", meanTheta)
	}
	// Timestamps must be untouched, input unmodified.
	for i := range clean {
		if noisy[i].UnixMillis != clean[i].UnixMillis {
			t.Fatal("noise changed timestamps")
		}
	}
}

func TestNoiseZeroIsIdentity(t *testing.T) {
	clean, _ := WalkAhead(DefaultConfig)
	noisy := Noise{}.Apply(rand.New(rand.NewSource(1)), clean)
	for i := range clean {
		if noisy[i] != clean[i] {
			t.Fatal("zero noise modified samples")
		}
	}
}

func TestScenarios(t *testing.T) {
	cfg := DefaultConfig
	for _, sc := range []struct {
		name string
		run  func() (int, error)
	}{
		{"WalkAhead", func() (int, error) { s, err := WalkAhead(cfg); return len(s), err }},
		{"WalkSideways", func() (int, error) { s, err := WalkSideways(cfg); return len(s), err }},
		{"Rotation", func() (int, error) { s, err := Rotation(cfg); return len(s), err }},
		{"DriveStraight", func() (int, error) { s, err := DriveStraight(cfg); return len(s), err }},
		{"BikeWithTurn", func() (int, error) { s, err := BikeWithTurn(cfg); return len(s), err }},
	} {
		t.Run(sc.name, func(t *testing.T) {
			n, err := sc.run()
			if err != nil {
				t.Fatal(err)
			}
			if n < 10 {
				t.Fatalf("scenario produced only %d samples", n)
			}
		})
	}
}

func TestFoVsProjection(t *testing.T) {
	samples, _ := WalkAhead(DefaultConfig)
	fovs := FoVs(samples)
	if len(fovs) != len(samples) {
		t.Fatal("length mismatch")
	}
	for i := range fovs {
		if fovs[i] != samples[i].FoV() {
			t.Fatal("projection mismatch")
		}
	}
}
