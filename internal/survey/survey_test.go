package survey

import (
	"math"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/segment"
	"fovr/internal/trace"
	"fovr/internal/world"
)

func TestSightLineOpenTerrain(t *testing.T) {
	s := Surveyor{World: world.World{Seed: 1, Density: 1e-12}, MaxRangeMeters: 150}
	if got := s.SightLine(0, 0, 45); got != 150 {
		t.Fatalf("open terrain sight line = %v, want max range", got)
	}
}

func TestSightLineHitsKnownObstruction(t *testing.T) {
	// Find a landmark in the default world and look straight at it.
	w := world.World{Seed: 2}
	lms := w.Near(0, 0, 100, nil)
	if len(lms) == 0 {
		t.Fatal("no landmarks")
	}
	lm := lms[0]
	d := math.Hypot(lm.East, lm.North)
	az := math.Atan2(lm.East, lm.North) * 180 / math.Pi
	s := Surveyor{World: w}
	got := s.SightLine(0, 0, az)
	if got > d+1e-6 {
		t.Fatalf("sight line %v passes through a landmark at %v", got, d)
	}
	// And looking exactly away must not hit *this* landmark closer than
	// something else: the sight line is at least positive.
	if s.SightLine(0, 0, az+180) <= 0 {
		t.Fatal("nonpositive sight line")
	}
}

func TestEstimateRadiusDensity(t *testing.T) {
	// Denser worlds have shorter sight lines.
	sparse := Surveyor{World: world.World{Seed: 3, Density: 0.05}}
	dense := Surveyor{World: world.World{Seed: 3, Density: 0.9}}
	rs := sparse.EstimateRadius(0, 0)
	rd := dense.EstimateRadius(0, 0)
	if rd >= rs {
		t.Fatalf("dense radius %v not below sparse %v", rd, rs)
	}
	if rd <= 0 || rs > sparse.maxRange() {
		t.Fatalf("radii out of range: %v %v", rd, rs)
	}
}

func TestEstimateRadiusGeo(t *testing.T) {
	origin := geo.Point{Lat: 40, Lng: 116.3}
	s := Surveyor{World: world.World{Seed: 4}}
	a := s.EstimateRadius(100, 50)
	b := s.EstimateRadiusGeo(origin, geo.Offset(geo.Offset(origin, 90, 100), 0, 50))
	if math.Abs(a-b) > 1 {
		t.Fatalf("geo estimate %v differs from local %v", b, a)
	}
}

func TestSurveyedCamera(t *testing.T) {
	s := Surveyor{World: world.World{Seed: 5}}
	c, err := s.SurveyedCamera(10, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if c.RadiusMeters <= 0 || c.HalfAngleDeg != 30 {
		t.Fatalf("camera %+v", c)
	}
	if _, err := s.SurveyedCamera(10, 10, 0); err == nil {
		t.Fatal("invalid half angle accepted")
	}
}

func TestThresholdForSegmentLength(t *testing.T) {
	cam := fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}
	const target = 40.0
	th, err := ThresholdForSegmentLength(cam, target)
	if err != nil {
		t.Fatal(err)
	}
	if th <= 0 || th >= 1 {
		t.Fatalf("threshold %v out of range", th)
	}
	// Walking straight with that threshold must split every ~target m.
	samples, err := trace.Straight(trace.Config{SampleHz: 10}, trace.ScenarioOrigin, 0, 0, 2, 120)
	if err != nil {
		t.Fatal(err)
	}
	results, err := segment.Split(segment.Config{Camera: cam, Threshold: th, KeepSamples: true}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) < 2 {
		t.Fatalf("only %d segments", len(results))
	}
	// Check the interior segments' spatial length (first/last may be
	// truncated).
	for i := 0; i < len(results)-1; i++ {
		seg := results[i].Segment
		first := seg.Samples[0].P
		last := seg.Samples[len(seg.Samples)-1].P
		length := geo.Distance(first, last)
		if math.Abs(length-target) > 3 {
			t.Fatalf("segment %d spans %.1f m, want ~%.0f", i, length, target)
		}
	}
}

func TestThresholdValidation(t *testing.T) {
	cam := fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}
	if _, err := ThresholdForSegmentLength(cam, 0); err == nil {
		t.Fatal("zero target accepted")
	}
	if _, err := ThresholdForSegmentLength(fov.Camera{}, 10); err == nil {
		t.Fatal("invalid camera accepted")
	}
}

func TestSurveyEndToEnd(t *testing.T) {
	// The full adaptive loop: survey a site, build a camera, derive a
	// threshold, segment a capture there — everything hangs together
	// without hand-picked constants.
	w := world.World{Seed: 7}
	s := Surveyor{World: w}
	cam, err := s.SurveyedCamera(0, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	th, err := ThresholdForSegmentLength(cam, cam.RadiusMeters/2)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := trace.WalkAhead(trace.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	results, err := segment.Split(segment.Config{Camera: cam, Threshold: th}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no segments")
	}
}
