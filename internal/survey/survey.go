// Package survey implements the adaptive parameter assignment Section
// VII sketches as future work: "Google Maps can help us do the site
// survey. By analyzing the visual features on the map, radius of view
// and segmentation threshold could be estimated."
//
// Instead of hand-picking 20 m for residential areas and 100 m for
// highways, a Surveyor measures actual sight lines at a position — how
// far each viewing ray travels before an obstruction — against the map
// substrate (package world plays the role of the map provider), and
// derives the empirical radius of view R from their distribution. A
// companion helper inverts the similarity model to pick the segmentation
// threshold that yields a desired segment length, closing the loop the
// paper leaves open between environment and parameters.
package survey

import (
	"fmt"
	"math"
	"sort"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/world"
)

// Surveyor estimates viewing parameters from a landmark map.
type Surveyor struct {
	// World is the obstruction map.
	World world.World
	// MaxRangeMeters caps sight lines (open terrain). Zero selects 200.
	MaxRangeMeters float64
	// Rays is the number of azimuth samples per site. Zero selects 36.
	Rays int
}

func (s Surveyor) maxRange() float64 {
	if s.MaxRangeMeters <= 0 {
		return 200
	}
	return s.MaxRangeMeters
}

func (s Surveyor) rays() int {
	if s.Rays <= 0 {
		return 36
	}
	return s.Rays
}

// SightLine returns the distance in meters the ray from (east, north)
// toward azDeg travels before hitting a landmark, capped at the maximum
// range. The hit test is analytic: a landmark of width W obstructs the
// ray if the ray passes within W/2 of its center, at positive range.
func (s Surveyor) SightLine(east, north, azDeg float64) float64 {
	rad := azDeg * math.Pi / 180
	dirE, dirN := math.Sin(rad), math.Cos(rad)
	best := s.maxRange()
	for _, lm := range s.World.Near(east, north, s.maxRange(), nil) {
		dE := lm.East - east
		dN := lm.North - north
		proj := dE*dirE + dN*dirN // distance along the ray
		if proj <= 0 || proj >= best {
			continue
		}
		perp := math.Abs(dE*dirN - dN*dirE) // distance off the ray
		if perp <= lm.Width/2 {
			best = proj
		}
	}
	return best
}

// EstimateRadius surveys the site: it samples sight lines over the full
// circle and returns their median — the empirical radius of view R for
// this environment. Dense districts yield short radii (the paper's
// residential 20 m), open roads long ones (the highway 100 m).
func (s Surveyor) EstimateRadius(east, north float64) float64 {
	n := s.rays()
	sights := make([]float64, n)
	for i := 0; i < n; i++ {
		sights[i] = s.SightLine(east, north, 360*float64(i)/float64(n))
	}
	sort.Float64s(sights)
	if n%2 == 1 {
		return sights[n/2]
	}
	return (sights[n/2-1] + sights[n/2]) / 2
}

// EstimateRadiusGeo is EstimateRadius for a geographic position, with the
// world anchored at origin.
func (s Surveyor) EstimateRadiusGeo(origin, p geo.Point) float64 {
	v := geo.Displacement(origin, p)
	return s.EstimateRadius(v.East, v.North)
}

// ThresholdForSegmentLength inverts the similarity model: it returns the
// Algorithm 1 threshold at which a camera moving straight ahead splits
// segments every targetMeters. Derivation: a forward walk's similarity to
// its anchor is SimParallel(d) = atan(R sin a / (d + R cos a)) / a, which
// is strictly decreasing, so thresh = SimParallel(targetMeters).
func ThresholdForSegmentLength(c fov.Camera, targetMeters float64) (float64, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	if !(targetMeters > 0) || math.IsInf(targetMeters, 0) {
		return 0, fmt.Errorf("survey: target segment length %v must be positive and finite", targetMeters)
	}
	return fov.SimParallel(c, targetMeters), nil
}

// SurveyedCamera bundles a site survey into a ready camera: the measured
// radius with the given half angle.
func (s Surveyor) SurveyedCamera(east, north, halfAngleDeg float64) (fov.Camera, error) {
	c := fov.Camera{HalfAngleDeg: halfAngleDeg, RadiusMeters: s.EstimateRadius(east, north)}
	if err := c.Validate(); err != nil {
		return fov.Camera{}, err
	}
	return c, nil
}
