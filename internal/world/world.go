// Package world models the synthetic outdoor scene the CV baseline films.
//
// The paper evaluates its FoV similarity against frame differencing on
// real street footage. We substitute a deterministic procedurally
// generated city: a field of point landmarks (poles, signs, facades) laid
// out on a jittered grid, each with a hash-derived height and brightness.
// A camera moving through this world sees landmarks shift exactly as
// street furniture does — rotation pans them across the image, forward
// translation makes them loom, sideways translation produces parallax —
// which is all frame differencing ever measures. The substitution is
// documented in DESIGN.md.
//
// Everything is deterministic in (Seed, cell): two renders of the same
// pose always produce identical frames.
package world

import "math"

// Landmark is one visible scene element in local east-north coordinates
// (meters, relative to the world origin).
type Landmark struct {
	East, North float64
	// Height is the apparent physical height in meters (1-12 m).
	Height float64
	// Width is the apparent physical width in meters (3-12 m).
	Width float64
	// Brightness is the surface intensity (32..224).
	Brightness uint8
}

// World is a procedural landmark field.
type World struct {
	// Seed selects the city layout.
	Seed uint64
	// CellMeters is the grid pitch; one potential landmark per cell.
	// Zero selects the 12 m default.
	CellMeters float64
	// Density is the probability a cell contains a landmark, in [0, 1].
	// Zero selects the 0.35 default.
	Density float64
}

// Default is a street-scene-like landmark field.
var Default = World{Seed: 1}

func (w World) cell() float64 {
	if w.CellMeters <= 0 {
		return 12
	}
	return w.CellMeters
}

func (w World) density() float64 {
	if w.Density <= 0 {
		return 0.35
	}
	return w.Density
}

// hash64 is SplitMix64 — a small, high-quality deterministic mixer.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// cellHash mixes the seed with a signed cell coordinate pair.
func (w World) cellHash(cx, cy int64) uint64 {
	h := hash64(w.Seed ^ hash64(uint64(cx)))
	return hash64(h ^ hash64(uint64(cy)))
}

// unit maps hash bits to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// landmarkAt returns the landmark of cell (cx, cy), if the cell has one.
func (w World) landmarkAt(cx, cy int64) (Landmark, bool) {
	h := w.cellHash(cx, cy)
	if unit(h) >= w.density() {
		return Landmark{}, false
	}
	cell := w.cell()
	h2 := hash64(h)
	h3 := hash64(h2)
	h4 := hash64(h3)
	h5 := hash64(h4)
	return Landmark{
		East:       (float64(cx) + unit(h2)) * cell,
		North:      (float64(cy) + unit(h3)) * cell,
		Height:     1 + unit(h4)*11,
		Width:      3 + unit(h5)*9,
		Brightness: uint8(32 + unit(hash64(h5))*192),
	}, true
}

// Near returns every landmark within radius meters of the point
// (east, north), appended to dst. The scan is bounded to the covered grid
// cells, so cost is O(radius^2 / cell^2).
func (w World) Near(east, north, radius float64, dst []Landmark) []Landmark {
	cell := w.cell()
	minX := int64(math.Floor((east - radius) / cell))
	maxX := int64(math.Floor((east + radius) / cell))
	minY := int64(math.Floor((north - radius) / cell))
	maxY := int64(math.Floor((north + radius) / cell))
	r2 := radius * radius
	for cy := minY; cy <= maxY; cy++ {
		for cx := minX; cx <= maxX; cx++ {
			lm, ok := w.landmarkAt(cx, cy)
			if !ok {
				continue
			}
			dE := lm.East - east
			dN := lm.North - north
			if dE*dE+dN*dN <= r2 {
				dst = append(dst, lm)
			}
		}
	}
	return dst
}
