package world

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	w := World{Seed: 7}
	a := w.Near(100, 200, 80, nil)
	b := w.Near(100, 200, 80, nil)
	if len(a) == 0 {
		t.Fatal("no landmarks found; density broken")
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("landmark %d differs between identical queries", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := World{Seed: 1}.Near(0, 0, 60, nil)
	b := World{Seed: 2}.Near(0, 0, 60, nil)
	if len(a) == len(b) {
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two seeds produced identical worlds")
		}
	}
}

func TestNearRespectsRadius(t *testing.T) {
	w := World{Seed: 3}
	const r = 50.0
	for _, lm := range w.Near(10, -20, r, nil) {
		d := math.Hypot(lm.East-10, lm.North+20)
		if d > r {
			t.Fatalf("landmark at distance %v > radius %v", d, r)
		}
	}
}

func TestNearGrowsWithRadius(t *testing.T) {
	w := World{Seed: 4}
	small := len(w.Near(0, 0, 20, nil))
	large := len(w.Near(0, 0, 100, nil))
	if large <= small {
		t.Fatalf("100 m query found %d landmarks, 20 m found %d", large, small)
	}
	// Every small-radius landmark must also be in the large-radius set.
	largeSet := map[Landmark]bool{}
	for _, lm := range w.Near(0, 0, 100, nil) {
		largeSet[lm] = true
	}
	for _, lm := range w.Near(0, 0, 20, nil) {
		if !largeSet[lm] {
			t.Fatal("small-radius landmark missing from large-radius query")
		}
	}
}

func TestDensityControlsCount(t *testing.T) {
	sparse := World{Seed: 5, Density: 0.1}
	dense := World{Seed: 5, Density: 0.9}
	ns := len(sparse.Near(0, 0, 100, nil))
	nd := len(dense.Near(0, 0, 100, nil))
	if nd <= ns*3 {
		t.Fatalf("density 0.9 found %d, density 0.1 found %d; expected ~9x", nd, ns)
	}
}

func TestLandmarkFieldsInRange(t *testing.T) {
	w := World{Seed: 6}
	lms := w.Near(0, 0, 150, nil)
	if len(lms) < 50 {
		t.Fatalf("only %d landmarks in 150 m; default density broken", len(lms))
	}
	for _, lm := range lms {
		if lm.Height < 1 || lm.Height > 12 {
			t.Fatalf("height %v out of [1, 12]", lm.Height)
		}
		if lm.Width < 3 || lm.Width > 12 {
			t.Fatalf("width %v out of [3, 12]", lm.Width)
		}
		if lm.Brightness < 32 {
			t.Fatalf("brightness %d below floor", lm.Brightness)
		}
	}
}

func TestAppendSemantics(t *testing.T) {
	w := World{Seed: 8}
	prefix := []Landmark{{East: -1}}
	out := w.Near(0, 0, 40, prefix)
	if len(out) <= 1 || out[0].East != -1 {
		t.Fatal("Near must append to dst")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	// Cells at negative east/north must hash consistently (int64 cast).
	w := World{Seed: 9}
	a := w.Near(-500, -500, 60, nil)
	b := w.Near(-500, -500, 60, nil)
	if len(a) == 0 {
		t.Fatal("no landmarks in negative quadrant")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("negative-coordinate query non-deterministic")
		}
	}
}
