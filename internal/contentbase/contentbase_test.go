package contentbase

import (
	"sync"
	"testing"

	"fovr/internal/cvision"
	"fovr/internal/render"
	"fovr/internal/video"
	"fovr/internal/world"
)

func descsFor(poses []render.Pose) []cvision.BlockMean {
	r := render.New(world.Default, render.DefaultCamera)
	res := video.Resolution{Name: "t", W: 160, H: 90}
	out := make([]cvision.BlockMean, len(poses))
	f := res.New()
	for i, p := range poses {
		r.Render(p, f)
		out[i] = cvision.ExtractBlockMean(f)
	}
	return out
}

func TestAddVideoValidation(t *testing.T) {
	s := NewStore()
	if err := s.AddVideo("", "v", 0, 100, nil); err == nil {
		t.Fatal("empty provider accepted")
	}
	if err := s.AddVideo("p", "", 0, 100, nil); err == nil {
		t.Fatal("empty video id accepted")
	}
	if err := s.AddVideo("p", "v", 0, 0, nil); err == nil {
		t.Fatal("zero frame interval accepted")
	}
}

func TestStoreAccounting(t *testing.T) {
	s := NewStore()
	descs := make([]cvision.BlockMean, 50)
	if err := s.AddVideo("p", "v", 1000, 100, descs); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 50 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.UploadedBytes() != 50*DescriptorBytes {
		t.Fatalf("UploadedBytes = %d", s.UploadedBytes())
	}
}

func TestQueryFindsLookalikeFrames(t *testing.T) {
	// Two videos: one panning past azimuth 40°, one past azimuth 220°.
	// Querying with an exemplar rendered at azimuth 40° must rank frames
	// of the first video on top.
	s := NewStore()
	var posesA, posesB []render.Pose
	for i := 0; i <= 20; i++ {
		posesA = append(posesA, render.Pose{AzimuthDeg: 30 + float64(i)})
		posesB = append(posesB, render.Pose{AzimuthDeg: 210 + float64(i)})
	}
	if err := s.AddVideo("p", "vidA", 0, 100, descsFor(posesA)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddVideo("p", "vidB", 0, 100, descsFor(posesB)); err != nil {
		t.Fatal(err)
	}
	exemplar := descsFor([]render.Pose{{AzimuthDeg: 40}})[0]
	matches := s.Query(exemplar, 0, 10_000, 5)
	if len(matches) != 5 {
		t.Fatalf("got %d matches", len(matches))
	}
	for i, m := range matches {
		if m.Record.VideoID != "vidA" {
			t.Fatalf("match %d from %s; exemplar scene is vidA's", i, m.Record.VideoID)
		}
	}
	// The best match is the exact frame (azimuth 40 = index 10).
	if matches[0].Record.FrameIndex != 10 {
		t.Fatalf("best match frame %d, want 10", matches[0].Record.FrameIndex)
	}
	if matches[0].Similarity != 1 {
		t.Fatalf("best similarity %v, want 1", matches[0].Similarity)
	}
}

func TestQueryTimeWindow(t *testing.T) {
	s := NewStore()
	descs := make([]cvision.BlockMean, 10)
	_ = s.AddVideo("p", "early", 0, 100, descs)
	_ = s.AddVideo("p", "late", 100_000, 100, descs)
	matches := s.Query(cvision.BlockMean{}, 99_000, 200_000, 100)
	for _, m := range matches {
		if m.Record.VideoID != "late" {
			t.Fatalf("time window leaked video %q", m.Record.VideoID)
		}
	}
	if len(matches) != 10 {
		t.Fatalf("got %d matches, want 10", len(matches))
	}
	if s.Query(cvision.BlockMean{}, 0, 1_000_000, 0) != nil {
		t.Fatal("k=0 returned matches")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			descs := make([]cvision.BlockMean, 100)
			if err := s.AddVideo("p", string(rune('a'+w)), int64(w)*1000, 100, descs); err != nil {
				t.Error(err)
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Query(cvision.BlockMean{}, 0, 1<<40, 10)
		}()
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d", s.Len())
	}
}
