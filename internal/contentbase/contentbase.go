// Package contentbase implements the data-centric, content-based
// retrieval architecture the paper's introduction argues against, so the
// comparison can be run instead of asserted.
//
// In this architecture the client extracts a content descriptor from
// every frame (here the block-mean grid of package cvision — already one
// of the *cheapest* content descriptors; SIFT-class features would be
// orders of magnitude heavier) and uploads all of them. The cloud can
// index nothing spatial — descriptors carry no geography — so a query is
// an exemplar descriptor plus a time window, answered by scanning every
// stored frame descriptor in the window and ranking by descriptor
// similarity.
//
// The measured contrasts with the FoV pipeline (see
// figures.TableBaselineContent):
//
//   - upload volume: 64 B *per frame* versus ~20 B *per segment*;
//   - query cost: a linear scan over all frames ever uploaded versus a
//     logarithmic index probe;
//   - query expressiveness: "find frames that look like this picture"
//     versus "find segments that covered this place at this time" — the
//     latter being the question crowd-sourced investigation actually
//     asks, and one content descriptors cannot answer at all.
package contentbase

import (
	"fmt"
	"sort"
	"sync"

	"fovr/internal/cvision"
)

// FrameRecord is one stored frame descriptor.
type FrameRecord struct {
	Provider   string
	VideoID    string
	FrameIndex int
	UnixMillis int64
	Descriptor cvision.BlockMean
}

// DescriptorBytes is the upload cost of one frame.
const DescriptorBytes = cvision.BlockGrid * cvision.BlockGrid

// Store is the cloud-side descriptor store: a flat, time-ordered list —
// there is nothing spatial to index.
type Store struct {
	mu      sync.RWMutex
	records []FrameRecord
	bytes   int64
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// AddVideo ingests the per-frame descriptors of one capture. Timestamps
// must be non-decreasing within the video.
func (s *Store) AddVideo(provider, videoID string, startMillis int64, frameIntervalMillis int64, descs []cvision.BlockMean) error {
	if provider == "" || videoID == "" {
		return fmt.Errorf("contentbase: empty provider or video id")
	}
	if frameIntervalMillis <= 0 {
		return fmt.Errorf("contentbase: frame interval %d must be positive", frameIntervalMillis)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, d := range descs {
		s.records = append(s.records, FrameRecord{
			Provider:   provider,
			VideoID:    videoID,
			FrameIndex: i,
			UnixMillis: startMillis + int64(i)*frameIntervalMillis,
			Descriptor: d,
		})
		s.bytes += DescriptorBytes
	}
	return nil
}

// Len returns the number of stored frame descriptors.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// UploadedBytes returns the total descriptor bytes received.
func (s *Store) UploadedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Match is one content-based retrieval result.
type Match struct {
	Record     FrameRecord
	Similarity float64
}

// Query scans every stored frame whose timestamp falls in
// [startMillis, endMillis] and returns the top-k by descriptor
// similarity to the exemplar. This is the architecture's fundamental
// cost: O(frames), every query.
func (s *Store) Query(exemplar cvision.BlockMean, startMillis, endMillis int64, k int) []Match {
	if k <= 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Match
	for _, r := range s.records {
		if r.UnixMillis < startMillis || r.UnixMillis > endMillis {
			continue
		}
		out = append(out, Match{Record: r, Similarity: exemplar.Similarity(r.Descriptor)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].Record.VideoID != out[j].Record.VideoID {
			return out[i].Record.VideoID < out[j].Record.VideoID
		}
		return out[i].Record.FrameIndex < out[j].Record.FrameIndex
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
