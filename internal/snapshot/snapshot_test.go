package snapshot

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/rtree"
	"fovr/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 1}, 2000)
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("got %d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		a, b := entries[i], got[i]
		if a.ID != b.ID || a.Provider != b.Provider {
			t.Fatalf("entry %d identity changed", i)
		}
		if math.Abs(a.Rep.FoV.P.Lat-b.Rep.FoV.P.Lat) > 1.1e-7 ||
			math.Abs(a.Rep.FoV.P.Lng-b.Rep.FoV.P.Lng) > 1.1e-7 {
			t.Fatalf("entry %d position beyond fixed-point precision", i)
		}
		if geo.AngleDiff(a.Rep.FoV.Theta, b.Rep.FoV.Theta) > 0.006 {
			t.Fatalf("entry %d theta drifted", i)
		}
		if a.Rep.StartMillis != b.Rep.StartMillis || a.Rep.EndMillis != b.Rep.EndMillis {
			t.Fatalf("entry %d interval changed", i)
		}
	}
}

func TestReadRejectsDuplicateIDs(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 3}, 8)
	entries[5].ID = entries[2].ID
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Read = %v, want ErrCorrupt", err)
	}
	if !bytes.Contains([]byte(err.Error()), []byte("duplicate id")) {
		t.Fatalf("error %q does not name the duplicate id", err)
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d entries", len(got))
	}
}

func TestRestoreBuildsWorkingIndex(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 2}, 5000)
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	idx, err := Restore(&buf, rtree.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 5000 {
		t.Fatalf("restored %d entries", idx.Len())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// A round trip through Entries + snapshot again preserves the count.
	var buf2 bytes.Buffer
	if err := Write(&buf2, idx.Entries()); err != nil {
		t.Fatal(err)
	}
	again, err := Read(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 5000 {
		t.Fatalf("second generation has %d entries", len(again))
	}
}

func TestCorruptionDetected(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 3}, 100)
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Every single-byte flip must be rejected (the CRC sees everything).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte{}, data...)
		mut[rng.Intn(len(mut))] ^= byte(1 + rng.Intn(255))
		if _, err := Read(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("trial %d: corruption not detected (err=%v)", trial, err)
		}
	}
	// Truncations too.
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteRejectsInvalidEntries(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 4}, 1)
	entries[0].Rep.FoV.P.Lat = 95
	var buf bytes.Buffer
	if err := Write(&buf, entries); err == nil {
		t.Fatal("invalid entry accepted")
	}
}

func TestCameraPersistence(t *testing.T) {
	entries := workload.Entries(workload.Config{Seed: 8}, 10)
	entries[3].Camera = fov.Camera{HalfAngleDeg: 22.5, RadiusMeters: 150}
	entries[7].Camera = fov.Camera{HalfAngleDeg: 40, RadiusMeters: 35}
	var buf bytes.Buffer
	if err := Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i].Camera != entries[i].Camera {
			t.Fatalf("entry %d camera %+v, want %+v", i, got[i].Camera, entries[i].Camera)
		}
	}
}
