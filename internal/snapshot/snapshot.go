// Package snapshot persists and restores the cloud server's state: the
// full set of indexed representative FoVs with their ids and providers,
// in a compact binary format. Restoring uses STR bulk loading, so a
// server restart rebuilds a 50,000-segment index in tens of
// milliseconds.
//
// Format (little endian):
//
//	magic "FoVS" | version u8 (=2) | count uvarint |
//	  per entry: id uvarint | provider len uvarint | provider bytes |
//	             flags u8 (bit0: camera block follows) |
//	             [half-angle u16 centideg | radius u32 cm] |
//	             lat i32 (1e-7 deg) | lng i32 | theta u16 (centideg) |
//	             start uvarint (ms) | duration uvarint (ms)
//	crc32 (IEEE) of everything before it
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/rtree"
	"fovr/internal/segment"
)

var magic = [4]byte{'F', 'o', 'V', 'S'}

const version = 2

// limits guard against corrupted headers allocating absurd amounts.
const (
	maxEntries     = 1 << 26
	maxProviderLen = 256
)

// AppendEntry validates e and appends its wire encoding to buf — the
// per-entry format shared by snapshots and the store's WAL records (see
// the package comment for the layout).
func AppendEntry(buf *bytes.Buffer, e index.Entry) error {
	if err := e.Validate(); err != nil {
		return err
	}
	if len(e.Provider) > maxProviderLen {
		return fmt.Errorf("snapshot: provider %q too long", e.Provider[:32]+"…")
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUvarint(e.ID)
	putUvarint(uint64(len(e.Provider)))
	buf.WriteString(e.Provider)
	if e.Camera != (fov.Camera{}) {
		buf.WriteByte(1)
		var cb [6]byte
		binary.LittleEndian.PutUint16(cb[0:], uint16(math.Round(e.Camera.HalfAngleDeg*100)))
		binary.LittleEndian.PutUint32(cb[2:], uint32(math.Round(e.Camera.RadiusMeters*100)))
		buf.Write(cb[:])
	} else {
		buf.WriteByte(0)
	}
	var fixed [10]byte
	binary.LittleEndian.PutUint32(fixed[0:], uint32(int32(math.Round(e.Rep.FoV.P.Lat*1e7))))
	binary.LittleEndian.PutUint32(fixed[4:], uint32(int32(math.Round(e.Rep.FoV.P.Lng*1e7))))
	binary.LittleEndian.PutUint16(fixed[8:], uint16(math.Round(geo.NormalizeDeg(e.Rep.FoV.Theta)*100))%36000)
	buf.Write(fixed[:])
	putUvarint(uint64(e.Rep.StartMillis))
	putUvarint(uint64(e.Rep.EndMillis - e.Rep.StartMillis))
	return nil
}

// writeChunk is the flush granularity of the streaming Write: entries
// accumulate in a small buffer that is flushed to the destination every
// time it passes this size, so the whole-snapshot O(state) buffer of the
// original implementation never exists.
const writeChunk = 32 << 10

// Write serializes entries to w. All entries are validated before the
// first byte is emitted, so an invalid entry never leaves a partial
// stream behind; write errors from w can still truncate one mid-stream
// (the CRC trailer lets the reader detect that).
func Write(w io.Writer, entries []index.Entry) error {
	if len(entries) > maxEntries {
		return fmt.Errorf("snapshot: %d entries exceed limit", len(entries))
	}
	for i, e := range entries {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("snapshot: entry %d: %w", i, err)
		}
		if len(e.Provider) > maxProviderLen {
			return fmt.Errorf("snapshot: entry %d: provider too long", i)
		}
	}
	h := crc32.NewIEEE()
	out := io.MultiWriter(w, h)
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version)
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(entries)))
	buf.Write(tmp[:n])
	for i, e := range entries {
		if err := AppendEntry(&buf, e); err != nil {
			return fmt.Errorf("snapshot: entry %d: %w", i, err)
		}
		if buf.Len() >= writeChunk {
			if _, err := out.Write(buf.Bytes()); err != nil {
				return err
			}
			buf.Reset()
		}
	}
	if buf.Len() > 0 {
		if _, err := out.Write(buf.Bytes()); err != nil {
			return err
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	_, err := w.Write(crc[:])
	return err
}

// ErrCorrupt reports a snapshot that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("snapshot: corrupt")

// Read parses a snapshot produced by Write.
func Read(r io.Reader) ([]index.Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crc) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rd := bytes.NewReader(body)
	var m [4]byte
	if _, err := io.ReadFull(rd, m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := rd.ReadByte()
	if err != nil || v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := binary.ReadUvarint(rd)
	if err != nil || count > maxEntries {
		return nil, fmt.Errorf("%w: bad entry count", ErrCorrupt)
	}
	entries := make([]index.Entry, 0, count)
	seen := make(map[uint64]struct{}, count)
	for i := uint64(0); i < count; i++ {
		e, err := ReadEntry(rd)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrCorrupt, i, err)
		}
		// A duplicate id here would otherwise surface much later, as a
		// baffling "duplicate id" failure out of the index rebuild.
		if _, dup := seen[e.ID]; dup {
			return nil, fmt.Errorf("%w: entry %d: duplicate id %d", ErrCorrupt, i, e.ID)
		}
		seen[e.ID] = struct{}{}
		entries = append(entries, e)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, rd.Len())
	}
	return entries, nil
}

// ReadEntry decodes and validates one entry as encoded by AppendEntry.
func ReadEntry(rd *bytes.Reader) (index.Entry, error) {
	var zero index.Entry
	id, err := binary.ReadUvarint(rd)
	if err != nil {
		return zero, errors.New("id")
	}
	plen, err := binary.ReadUvarint(rd)
	if err != nil || plen > maxProviderLen {
		return zero, errors.New("provider length")
	}
	prov := make([]byte, plen)
	if _, err := io.ReadFull(rd, prov); err != nil {
		return zero, errors.New("provider")
	}
	flags, err := rd.ReadByte()
	if err != nil || flags&^byte(1) != 0 {
		return zero, errors.New("flags")
	}
	var cam fov.Camera
	if flags&1 != 0 {
		var cb [6]byte
		if _, err := io.ReadFull(rd, cb[:]); err != nil {
			return zero, errors.New("camera")
		}
		cam = fov.Camera{
			HalfAngleDeg: float64(binary.LittleEndian.Uint16(cb[0:])) / 100,
			RadiusMeters: float64(binary.LittleEndian.Uint32(cb[2:])) / 100,
		}
	}
	var fixed [10]byte
	if _, err := io.ReadFull(rd, fixed[:]); err != nil {
		return zero, errors.New("pose")
	}
	start, err := binary.ReadUvarint(rd)
	if err != nil {
		return zero, errors.New("start")
	}
	dur, err := binary.ReadUvarint(rd)
	if err != nil || start > math.MaxInt64 || dur > math.MaxInt64-start {
		return zero, errors.New("interval")
	}
	e := index.Entry{
		ID:       id,
		Provider: string(prov),
		Camera:   cam,
		Rep: segment.Representative{
			FoV: fov.FoV{
				P: geo.Point{
					Lat: float64(int32(binary.LittleEndian.Uint32(fixed[0:]))) / 1e7,
					Lng: float64(int32(binary.LittleEndian.Uint32(fixed[4:]))) / 1e7,
				},
				Theta: float64(binary.LittleEndian.Uint16(fixed[8:])) / 100,
			},
			StartMillis: int64(start),
			EndMillis:   int64(start + dur),
		},
	}
	if err := e.Validate(); err != nil {
		return zero, err
	}
	return e, nil
}

// Restore rebuilds an R-tree index from a snapshot via STR bulk loading.
func Restore(r io.Reader, opts rtree.Options) (*index.RTree, error) {
	entries, err := Read(r)
	if err != nil {
		return nil, err
	}
	return index.BulkLoadRTree(opts, entries)
}
