// Package snapshot persists and restores the cloud server's state: the
// full set of indexed representative FoVs with their ids and providers,
// in a compact binary format. Restoring uses STR bulk loading, so a
// server restart rebuilds a 50,000-segment index in tens of
// milliseconds.
//
// Format (little endian):
//
//	magic "FoVS" | version u8 (=2) | count uvarint |
//	  per entry: id uvarint | provider len uvarint | provider bytes |
//	             flags u8 (bit0: camera block follows) |
//	             [half-angle u16 centideg | radius u32 cm] |
//	             lat i32 (1e-7 deg) | lng i32 | theta u16 (centideg) |
//	             start uvarint (ms) | duration uvarint (ms)
//	crc32 (IEEE) of everything before it
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/rtree"
	"fovr/internal/segment"
)

var magic = [4]byte{'F', 'o', 'V', 'S'}

const version = 2

// limits guard against corrupted headers allocating absurd amounts.
const (
	maxEntries     = 1 << 26
	maxProviderLen = 256
)

// Write serializes entries to w.
func Write(w io.Writer, entries []index.Entry) error {
	if len(entries) > maxEntries {
		return fmt.Errorf("snapshot: %d entries exceed limit", len(entries))
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(version)
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	putUvarint(uint64(len(entries)))
	for i, e := range entries {
		if err := e.Validate(); err != nil {
			return fmt.Errorf("snapshot: entry %d: %w", i, err)
		}
		if len(e.Provider) > maxProviderLen {
			return fmt.Errorf("snapshot: entry %d: provider too long", i)
		}
		putUvarint(e.ID)
		putUvarint(uint64(len(e.Provider)))
		buf.WriteString(e.Provider)
		if e.Camera != (fov.Camera{}) {
			buf.WriteByte(1)
			var cb [6]byte
			binary.LittleEndian.PutUint16(cb[0:], uint16(math.Round(e.Camera.HalfAngleDeg*100)))
			binary.LittleEndian.PutUint32(cb[2:], uint32(math.Round(e.Camera.RadiusMeters*100)))
			buf.Write(cb[:])
		} else {
			buf.WriteByte(0)
		}
		var fixed [10]byte
		binary.LittleEndian.PutUint32(fixed[0:], uint32(int32(math.Round(e.Rep.FoV.P.Lat*1e7))))
		binary.LittleEndian.PutUint32(fixed[4:], uint32(int32(math.Round(e.Rep.FoV.P.Lng*1e7))))
		binary.LittleEndian.PutUint16(fixed[8:], uint16(math.Round(geo.NormalizeDeg(e.Rep.FoV.Theta)*100))%36000)
		buf.Write(fixed[:])
		putUvarint(uint64(e.Rep.StartMillis))
		putUvarint(uint64(e.Rep.EndMillis - e.Rep.StartMillis))
	}
	sum := crc32.ChecksumIEEE(buf.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	buf.Write(crc[:])
	_, err := w.Write(buf.Bytes())
	return err
}

// ErrCorrupt reports a snapshot that fails structural or checksum
// validation.
var ErrCorrupt = errors.New("snapshot: corrupt")

// Read parses a snapshot produced by Write.
func Read(r io.Reader) ([]index.Entry, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	body, crc := data[:len(data)-4], data[len(data)-4:]
	if binary.LittleEndian.Uint32(crc) != crc32.ChecksumIEEE(body) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rd := bytes.NewReader(body)
	var m [4]byte
	if _, err := io.ReadFull(rd, m[:]); err != nil || m != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	v, err := rd.ReadByte()
	if err != nil || v != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	count, err := binary.ReadUvarint(rd)
	if err != nil || count > maxEntries {
		return nil, fmt.Errorf("%w: bad entry count", ErrCorrupt)
	}
	entries := make([]index.Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		id, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d id", ErrCorrupt, i)
		}
		plen, err := binary.ReadUvarint(rd)
		if err != nil || plen > maxProviderLen {
			return nil, fmt.Errorf("%w: entry %d provider length", ErrCorrupt, i)
		}
		prov := make([]byte, plen)
		if _, err := io.ReadFull(rd, prov); err != nil {
			return nil, fmt.Errorf("%w: entry %d provider", ErrCorrupt, i)
		}
		flags, err := rd.ReadByte()
		if err != nil || flags&^byte(1) != 0 {
			return nil, fmt.Errorf("%w: entry %d flags", ErrCorrupt, i)
		}
		var cam fov.Camera
		if flags&1 != 0 {
			var cb [6]byte
			if _, err := io.ReadFull(rd, cb[:]); err != nil {
				return nil, fmt.Errorf("%w: entry %d camera", ErrCorrupt, i)
			}
			cam = fov.Camera{
				HalfAngleDeg: float64(binary.LittleEndian.Uint16(cb[0:])) / 100,
				RadiusMeters: float64(binary.LittleEndian.Uint32(cb[2:])) / 100,
			}
		}
		var fixed [10]byte
		if _, err := io.ReadFull(rd, fixed[:]); err != nil {
			return nil, fmt.Errorf("%w: entry %d pose", ErrCorrupt, i)
		}
		start, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d start", ErrCorrupt, i)
		}
		dur, err := binary.ReadUvarint(rd)
		if err != nil || start > math.MaxInt64 || dur > math.MaxInt64-start {
			return nil, fmt.Errorf("%w: entry %d interval", ErrCorrupt, i)
		}
		e := index.Entry{
			ID:       id,
			Provider: string(prov),
			Camera:   cam,
			Rep: segment.Representative{
				FoV: fov.FoV{
					P: geo.Point{
						Lat: float64(int32(binary.LittleEndian.Uint32(fixed[0:]))) / 1e7,
						Lng: float64(int32(binary.LittleEndian.Uint32(fixed[4:]))) / 1e7,
					},
					Theta: float64(binary.LittleEndian.Uint16(fixed[8:])) / 100,
				},
				StartMillis: int64(start),
				EndMillis:   int64(start + dur),
			},
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("%w: entry %d: %v", ErrCorrupt, i, err)
		}
		entries = append(entries, e)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, rd.Len())
	}
	return entries, nil
}

// Restore rebuilds an R-tree index from a snapshot via STR bulk loading.
func Restore(r io.Reader, opts rtree.Options) (*index.RTree, error) {
	entries, err := Read(r)
	if err != nil {
		return nil, err
	}
	return index.BulkLoadRTree(opts, entries)
}
