// Segment-wise bootstrap: instead of one monolithic snapshot, a
// follower of a tiered leader fetches the manifest, then each sealed
// segment it does not already hold durably, then the memtable with its
// WAL cursor. Each installed segment is persisted (and recorded in the
// follower's own manifest) before the next fetch begins, so a follower
// killed mid-bootstrap resumes without refetching any completed
// segment — local durable presence IS the resume cursor; there is no
// separate progress file to lose.
package replica

import (
	"context"
	"errors"
	"fmt"

	"fovr/internal/index"
	"fovr/internal/store"
)

// ErrTieredUnsupported reports that the leader answered a tiered
// bootstrap leg with the legacy protocol (old leader, non-tiered store,
// or nothing sealed yet worth shipping piecewise). The follower falls
// back to the monolithic snapshot for this bootstrap only; the next
// bootstrap probes again.
var ErrTieredUnsupported = errors.New("replica: leader does not serve tiered bootstrap")

// SegmentSink is the follower-local store surface the tiered bootstrap
// installs into; *server.Server implements it over a tiered
// *store.Disk. A nil sink in Options disables the tiered path.
type SegmentSink interface {
	// HasSegment reports whether segment (window, seq) with the given
	// content CRC is already durable locally (live or staged); the
	// bootstrap skips fetching it.
	HasSegment(window int64, seq uint64, crc uint32) bool
	// InstallSegment verifies raw against meta and persists it durably
	// before returning.
	InstallSegment(meta store.SegmentMeta, raw []byte) error
	// FinishBootstrap atomically replaces local state with the leader's
	// manifest (whose segments are all installed) plus its memtable.
	FinishBootstrap(m store.ManifestSnapshot, mem []index.Entry) error
}

// TieredFetcher is the client surface for the three bootstrap legs;
// *client.Replicator implements it. Each leg returns
// ErrTieredUnsupported when the leader answers with a legacy stream
// kind.
type TieredFetcher interface {
	Fetcher
	FetchManifest(ctx context.Context) (*ManifestBatch, error)
	FetchSegment(ctx context.Context, window int64, seq uint64) ([]byte, error)
	FetchMem(ctx context.Context) (*Batch, error)
}

// bootstrapAttempts bounds the manifest-moved retry loop. Each retry
// refetches only the delta (installed segments are skipped), so even a
// leader sealing continuously converges unless it seals faster than
// the follower can fetch one window.
const bootstrapAttempts = 8

// bootstrapTiered runs one tiered bootstrap to completion: manifest →
// missing segments → memtable → atomic install. A nil return means the
// cursor is set and streaming can resume; ErrTieredUnsupported means
// the caller should bootstrap via the legacy snapshot this round.
func (f *Follower) bootstrapTiered(tf TieredFetcher) error {
	for attempt := 1; attempt <= bootstrapAttempts; attempt++ {
		if err := f.ctx.Err(); err != nil {
			return err
		}
		mb, err := tf.FetchManifest(f.ctx)
		if err != nil {
			return err
		}
		if len(mb.Manifest.Segments) == 0 {
			// Nothing sealed: the monolithic snapshot is strictly cheaper.
			return ErrTieredUnsupported
		}
		fetched, skipped := 0, 0
		for _, seg := range mb.Manifest.Segments {
			if err := f.ctx.Err(); err != nil {
				return err
			}
			if f.opts.Segments.HasSegment(seg.Window, seg.Seq, seg.CRC) {
				skipped++
				f.segSkipped.Inc()
				continue
			}
			raw, err := tf.FetchSegment(f.ctx, seg.Window, seg.Seq)
			if err != nil {
				return fmt.Errorf("segment %d/%d: %w", seg.Window, seg.Seq, err)
			}
			if err := f.opts.Segments.InstallSegment(seg, raw); err != nil {
				return fmt.Errorf("install segment %d/%d: %w", seg.Window, seg.Seq, err)
			}
			fetched++
			f.segFetched.Inc()
			f.segFetchedBytes.Add(int64(len(raw)))
		}
		memB, err := tf.FetchMem(f.ctx)
		if err != nil {
			return err
		}
		if memB.ManifestHash != mb.Manifest.Hash {
			// The sealed set moved between the manifest and memtable legs.
			// Everything installed so far stays durable; the retry fetches
			// only the delta.
			f.log.Info("replica manifest moved during tiered bootstrap; retrying",
				"attempt", attempt, "fetched", fetched, "skipped", skipped)
			continue
		}
		if err := f.opts.Segments.FinishBootstrap(mb.Manifest, memB.Entries); err != nil {
			return fmt.Errorf("finish tiered bootstrap: %w", err)
		}
		f.bootstraps.Inc()
		f.update(func(st *Status) {
			st.State = "streaming"
			st.Bootstraps++
			st.Cursor = memB.Next
			st.LeaderStoreID = memB.StoreID
			st.LastError = ""
			setLag(st, memB)
		})
		f.log.Info("replica tiered bootstrap complete",
			"segments", fetched, "skipped", skipped,
			"memEntries", len(memB.Entries), "cursor", memB.Next)
		return nil
	}
	return fmt.Errorf("replica: tiered bootstrap: manifest kept moving after %d attempts", bootstrapAttempts)
}
