package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/obs"
	"fovr/internal/segment"
	"fovr/internal/store"
)

func entry(id uint64, provider string) index.Entry {
	return index.Entry{
		ID:       id,
		Provider: provider,
		Rep: segment.Representative{
			FoV: fov.FoV{
				P:     geo.Point{Lat: 40.0 + float64(id)*1e-5, Lng: 116.326},
				Theta: float64(id*37%360) + 0.25,
			},
			StartMillis: int64(id) * 1000,
			EndMillis:   int64(id)*1000 + 5000,
		},
		Camera: fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100},
	}
}

// frames encodes records in the store's WAL frame format, the same
// bytes a leader would ship.
func frames(t *testing.T, recs ...store.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		if err := store.AppendWALRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// scriptFetcher serves a fixed sequence of responses, then idles with
// empty caught-up batches. Each step sees the cursor the follower asked
// with, so a test can assert the resume positions.
type scriptFetcher struct {
	mu    sync.Mutex
	steps []func(cur Cursor) (*Batch, error)
	asked []Cursor
	idle  Batch // returned once the script is exhausted
}

func (s *scriptFetcher) Fetch(ctx context.Context, cur Cursor, wait time.Duration) (*Batch, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.asked = append(s.asked, cur)
	if len(s.steps) == 0 {
		// Simulate a long poll expiring so the loop does not spin.
		time.Sleep(5 * time.Millisecond)
		idle := s.idle
		return &idle, nil
	}
	step := s.steps[0]
	s.steps = s.steps[1:]
	return step(cur)
}

func (s *scriptFetcher) cursors() []Cursor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Cursor(nil), s.asked...)
}

// memApplier folds batches into a map, mirroring what the server's
// apply path does to its index.
type memApplier struct {
	mu      sync.Mutex
	state   map[uint64]index.Entry
	resets  int
	traces  []string // propagated trace ids seen by Apply* calls
	failOne error    // next Apply* call fails with this once
}

func newMemApplier() *memApplier { return &memApplier{state: map[uint64]index.Entry{}} }

func (m *memApplier) takeFailure() error {
	err := m.failOne
	m.failOne = nil
	return err
}

func (m *memApplier) ApplyRegister(entries []index.Entry, trace string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.takeFailure(); err != nil {
		return err
	}
	if trace != "" {
		m.traces = append(m.traces, trace)
	}
	for _, e := range entries {
		m.state[e.ID] = e
	}
	return nil
}

func (m *memApplier) ApplyRemove(ids []uint64, trace string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.takeFailure(); err != nil {
		return err
	}
	if trace != "" {
		m.traces = append(m.traces, trace)
	}
	for _, id := range ids {
		delete(m.state, id)
	}
	return nil
}

func (m *memApplier) ResetState(entries []index.Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.takeFailure(); err != nil {
		return err
	}
	m.resets++
	m.state = make(map[uint64]index.Entry, len(entries))
	for _, e := range entries {
		m.state[e.ID] = e
	}
	return nil
}

func (m *memApplier) ids() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.state))
	for id := range m.state {
		out = append(out, id)
	}
	return out
}

func startFollower(t *testing.T, fetch Fetcher, apply Applier) *Follower {
	t.Helper()
	f, err := Start(Options{
		Fetch:    fetch,
		Apply:    apply,
		Poll:     10 * time.Millisecond,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func waitCaughtUp(t *testing.T, f *Follower) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v (status %+v)", err, f.Status())
	}
}

func TestFollowerBootstrapsThenTails(t *testing.T) {
	wal := frames(t,
		store.Record{Op: store.OpRegister, Entries: []index.Entry{entry(3, "bob")}},
		store.Record{Op: store.OpRemove, IDs: []uint64{1}},
	)
	sf := &scriptFetcher{
		steps: []func(Cursor) (*Batch, error){
			func(cur Cursor) (*Batch, error) {
				if !cur.IsZero() {
					return nil, fmt.Errorf("first fetch with cursor %v, want zero (bootstrap)", cur)
				}
				return &Batch{
					Kind:    StreamSnapshot,
					Entries: []index.Entry{entry(1, "alice"), entry(2, "alice")},
					Next:    Cursor{Gen: 1, Off: 100},
					Lead:    Cursor{Gen: 1, Off: 100},
					StoreID: "leader-1",
				}, nil
			},
			func(cur Cursor) (*Batch, error) {
				if cur != (Cursor{Gen: 1, Off: 100}) {
					return nil, fmt.Errorf("tail fetch with cursor %v, want 1/100", cur)
				}
				return &Batch{
					Kind:    StreamWAL,
					Frames:  wal,
					Next:    Cursor{Gen: 1, Off: 100 + int64(len(wal))},
					Lead:    Cursor{Gen: 1, Off: 100 + int64(len(wal))},
					StoreID: "leader-1",
				}, nil
			},
		},
	}
	sf.idle = Batch{Kind: StreamWAL,
		Next: Cursor{Gen: 1, Off: 100 + int64(len(wal))},
		Lead: Cursor{Gen: 1, Off: 100 + int64(len(wal))}, StoreID: "leader-1"}

	ap := newMemApplier()
	f := startFollower(t, sf, ap)
	waitCaughtUp(t, f)

	ids := ap.ids()
	if len(ids) != 2 {
		t.Fatalf("follower state ids = %v, want {2, 3}", ids)
	}
	st := f.Status()
	if st.State != "streaming" || st.Bootstraps != 1 || st.AppliedRecords != 2 {
		t.Errorf("status = %+v", st)
	}
	if st.LeaderStoreID != "leader-1" || st.LagBytes != 0 {
		t.Errorf("status = %+v", st)
	}
}

func TestFollowerRebootstrapsOnStoreIDChange(t *testing.T) {
	snap := func(id string, e index.Entry) func(Cursor) (*Batch, error) {
		return func(Cursor) (*Batch, error) {
			return &Batch{Kind: StreamSnapshot, Entries: []index.Entry{e},
				Next: Cursor{Gen: 1, Off: 10}, Lead: Cursor{Gen: 1, Off: 10}, StoreID: id}, nil
		}
	}
	sf := &scriptFetcher{
		steps: []func(Cursor) (*Batch, error){
			snap("leader-old", entry(1, "alice")),
			// The leader's directory was wiped: same cursor shape, new id.
			func(cur Cursor) (*Batch, error) {
				return &Batch{Kind: StreamWAL, Frames: nil,
					Next: cur, Lead: Cursor{Gen: 1, Off: 10}, StoreID: "leader-new"}, nil
			},
			// The follower must come back asking for a bootstrap.
			func(cur Cursor) (*Batch, error) {
				if !cur.IsZero() {
					return nil, fmt.Errorf("after id change cursor = %v, want zero", cur)
				}
				return snap("leader-new", entry(7, "carol"))(cur)
			},
		},
	}
	sf.idle = Batch{Kind: StreamWAL, Next: Cursor{Gen: 1, Off: 10},
		Lead: Cursor{Gen: 1, Off: 10}, StoreID: "leader-new"}

	ap := newMemApplier()
	f := startFollower(t, sf, ap)
	waitCaughtUp(t, f)

	if ids := ap.ids(); len(ids) != 1 || ids[0] != 7 {
		t.Fatalf("state after re-bootstrap = %v, want [7]", ids)
	}
	if st := f.Status(); st.Bootstraps != 2 || st.LeaderStoreID != "leader-new" {
		t.Errorf("status = %+v", st)
	}
}

func TestFollowerRebootstrapsOnDamagedFrames(t *testing.T) {
	good := frames(t, store.Record{Op: store.OpRegister, Entries: []index.Entry{entry(9, "dave")}})
	sf := &scriptFetcher{
		steps: []func(Cursor) (*Batch, error){
			func(Cursor) (*Batch, error) {
				return &Batch{Kind: StreamSnapshot, Entries: nil,
					Next: Cursor{Gen: 1, Off: 0}, Lead: Cursor{Gen: 1, Off: 0}, StoreID: "L"}, nil
			},
			func(Cursor) (*Batch, error) {
				return &Batch{Kind: StreamWAL, Frames: []byte("not a wal frame"),
					Next: Cursor{Gen: 1, Off: 15}, Lead: Cursor{Gen: 1, Off: 15}, StoreID: "L"}, nil
			},
			func(cur Cursor) (*Batch, error) {
				if !cur.IsZero() {
					return nil, fmt.Errorf("after damage cursor = %v, want zero", cur)
				}
				return &Batch{Kind: StreamSnapshot, Entries: nil,
					Next: Cursor{Gen: 1, Off: 0}, Lead: Cursor{Gen: 1, Off: 0}, StoreID: "L"}, nil
			},
			func(Cursor) (*Batch, error) {
				return &Batch{Kind: StreamWAL, Frames: good,
					Next: Cursor{Gen: 1, Off: int64(len(good))}, Lead: Cursor{Gen: 1, Off: int64(len(good))}, StoreID: "L"}, nil
			},
		},
	}
	sf.idle = Batch{Kind: StreamWAL, Next: Cursor{Gen: 1, Off: int64(len(good))},
		Lead: Cursor{Gen: 1, Off: int64(len(good))}, StoreID: "L"}

	ap := newMemApplier()
	f := startFollower(t, sf, ap)
	waitCaughtUp(t, f)

	if ids := ap.ids(); len(ids) != 1 || ids[0] != 9 {
		t.Fatalf("state after recovery = %v, want [9]", ids)
	}
	if st := f.Status(); st.ApplyErrors != 1 || st.Bootstraps != 2 {
		t.Errorf("status = %+v", st)
	}
}

func TestFollowerRetriesFetchErrors(t *testing.T) {
	sf := &scriptFetcher{
		steps: []func(Cursor) (*Batch, error){
			func(Cursor) (*Batch, error) { return nil, errors.New("leader down") },
			func(Cursor) (*Batch, error) {
				return &Batch{Kind: StreamSnapshot, Entries: []index.Entry{entry(1, "alice")},
					Next: Cursor{Gen: 1, Off: 5}, Lead: Cursor{Gen: 1, Off: 5}, StoreID: "L"}, nil
			},
		},
	}
	sf.idle = Batch{Kind: StreamWAL, Next: Cursor{Gen: 1, Off: 5},
		Lead: Cursor{Gen: 1, Off: 5}, StoreID: "L"}

	ap := newMemApplier()
	f := startFollower(t, sf, ap)
	waitCaughtUp(t, f)
	st := f.Status()
	if st.FetchErrors != 1 || st.Bootstraps != 1 || st.LastError != "" {
		t.Errorf("status = %+v", st)
	}
}

func TestFollowerLagAccounting(t *testing.T) {
	sf := &scriptFetcher{
		steps: []func(Cursor) (*Batch, error){
			func(Cursor) (*Batch, error) {
				// The leader is 40 bytes ahead of the shipped batch.
				return &Batch{Kind: StreamSnapshot, Entries: nil,
					Next: Cursor{Gen: 1, Off: 60}, Lead: Cursor{Gen: 1, Off: 100}, StoreID: "L"}, nil
			},
		},
	}
	sf.idle = Batch{Kind: StreamWAL, Next: Cursor{Gen: 1, Off: 60},
		Lead: Cursor{Gen: 1, Off: 100}, StoreID: "L"}

	f := startFollower(t, sf, newMemApplier())
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := f.Status()
		if st.Bootstraps == 1 {
			if st.LagBytes != 40 || st.CaughtUp {
				t.Fatalf("status = %+v, want lag 40, not caught up", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no bootstrap observed; status = %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStartValidatesOptions(t *testing.T) {
	if _, err := Start(Options{}); err == nil {
		t.Fatal("Start with no Fetch/Apply succeeded")
	}
}
