// End-to-end replication tests: a real leader serving /replicate over
// HTTP, a real follower pulling through client.Replicator into a real
// read-only server, both on durable stores. The kill idiom matches the
// store's durability tests: a "SIGKILL" abandons the process's objects
// without any shutdown and reopens the same data directory.
package replica_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"fovr/internal/client"
	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/obs"
	"fovr/internal/query"
	"fovr/internal/replica"
	"fovr/internal/segment"
	"fovr/internal/server"
	"fovr/internal/snapshot"
	"fovr/internal/store"
	"fovr/internal/wire"
)

var e2eCenter = geo.Point{Lat: 40.0013, Lng: 116.326}

func mkRep(p geo.Point, theta float64, start, end int64) segment.Representative {
	return segment.Representative{
		FoV:         fov.FoV{P: p, Theta: theta},
		StartMillis: start,
		EndMillis:   end,
	}
}

func openDisk(t *testing.T, dir string) *store.Disk {
	t.Helper()
	st, err := store.Open(store.Options{
		Dir:                dir,
		CheckpointInterval: -1,
		Registry:           obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newLeader(t *testing.T, st store.Store) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(server.Config{
		Camera:   fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100},
		Store:    st,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	return srv, ts
}

// newFollower builds a read-only server on st and a follower pulling
// from leaderURL into it. Poll is kept short so tests converge fast.
func newFollower(t *testing.T, st store.Store, leaderURL string) (*server.Server, *replica.Follower) {
	t.Helper()
	srv, err := server.New(server.Config{
		Camera:    fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100},
		Store:     st,
		Registry:  obs.NewRegistry(),
		ReadOnly:  true,
		LeaderURL: leaderURL,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := client.NewReplicator(leaderURL)
	rep.RetryDelay = 5 * time.Millisecond
	fol, err := replica.Start(replica.Options{
		Fetch:    rep,
		Apply:    srv,
		Poll:     50 * time.Millisecond,
		Registry: srv.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.AttachFollower(fol)
	return srv, fol
}

// sortedSnapshot serializes a server's entries in id order — the
// byte-identical comparison form (live snapshot streams follow index
// iteration order, which legitimately differs between index builds).
func sortedSnapshot(t *testing.T, s *server.Server) []byte {
	t.Helper()
	entries := s.Index().Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].ID < entries[j].ID })
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitConverged polls until the follower's state is byte-identical to
// the leader's. The leader must be quiescent.
func waitConverged(t *testing.T, leader, follower *server.Server, fol *replica.Follower) {
	t.Helper()
	want := sortedSnapshot(t, leader)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if bytes.Equal(sortedSnapshot(t, follower), want) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower did not converge: %d entries vs leader's %d (status %+v)",
				follower.Index().Len(), leader.Index().Len(), fol.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func e2eQueryIDs(t *testing.T, s *server.Server, q query.Query) []uint64 {
	t.Helper()
	ranked, err := s.Query(q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(ranked))
	for i, r := range ranked {
		ids[i] = r.Entry.ID
	}
	// Ranking ties (equal distances) break by index iteration order,
	// which legitimately differs between a bulk-loaded and an
	// incrementally-built tree; parity is about the result set.
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestReplicaConvergence is the acceptance test: a follower started
// from empty converges to byte-identical state with the leader under
// concurrent ingest, survives a mid-stream kill of the follower
// process, and answers queries that match the leader's.
func TestReplicaConvergence(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leaderStore := openDisk(t, leaderDir)
	leader, ts := newLeader(t, leaderStore)
	defer ts.Close()
	defer leaderStore.Close()

	fst := openDisk(t, followerDir)
	fsrv, fol := newFollower(t, fst, ts.URL)

	// Concurrent ingest: uploads land while the follower bootstraps and
	// tails, with a leader checkpoint mid-stream forcing a generation
	// rotation under the follower's cursor.
	const uploads, repsPer = 30, 4
	ingestDone := make(chan error, 1)
	go func() {
		for i := 0; i < uploads; i++ {
			up := wire.Upload{Provider: fmt.Sprintf("p%d", i%3), Reps: make([]segment.Representative, repsPer)}
			for j := range up.Reps {
				up.Reps[j] = mkRep(geo.Offset(e2eCenter, float64((i*repsPer+j)*7%360), float64(10+i%40)),
					float64((i*31+j)%360), int64(i)*1000, int64(i)*1000+5000)
			}
			if _, err := leader.Register(up); err != nil {
				ingestDone <- err
				return
			}
			if i == uploads/3 {
				if err := leaderStore.Checkpoint(); err != nil {
					ingestDone <- err
					return
				}
			}
		}
		ingestDone <- nil
	}()

	// Mid-stream kill: once the follower has applied something, abandon
	// its server and store with no shutdown (the loop is stopped — a
	// dead process pulls nothing — but nothing is flushed or closed).
	for fol.Status().AppliedRecords == 0 && fol.Status().Bootstraps == 0 {
		time.Sleep(time.Millisecond)
	}
	fol.Close()
	_ = fsrv // abandoned, never closed

	if err := <-ingestDone; err != nil {
		t.Fatal(err)
	}
	// One more upload after the kill so the restarted follower has
	// strictly newer records to fetch.
	if _, err := leader.Register(wire.Upload{Provider: "late", Reps: []segment.Representative{
		mkRep(geo.Offset(e2eCenter, 10, 15), 100, 50_000, 55_000),
	}}); err != nil {
		t.Fatal(err)
	}

	// Restart: reopen the follower's directory. Recovery must not lose
	// what the kill-point had journaled, and the fresh follower
	// re-bootstraps to the leader's full state.
	fst2 := openDisk(t, followerDir)
	defer fst2.Close()
	fsrv2, fol2 := newFollower(t, fst2, ts.URL)
	defer fol2.Close()
	waitConverged(t, leader, fsrv2, fol2)

	if got, want := fsrv2.Index().Len(), uploads*repsPer+1; got != want {
		t.Fatalf("converged follower holds %d entries, want %d", got, want)
	}

	// Query parity on the replicated prefix. Radii sit off the exact
	// entry distances: the journal's wire encoding quantizes coordinates
	// to 1e-7 degrees (about a centimeter), so an entry placed exactly
	// on a query boundary can flip sides between the leader's in-memory
	// float and the replicated fixed-point value.
	for _, q := range []query.Query{
		{Center: e2eCenter, RadiusMeters: 30.5, StartMillis: 0, EndMillis: 60_000},
		{Center: geo.Offset(e2eCenter, 45, 25), RadiusMeters: 52.3, StartMillis: 5_000, EndMillis: 20_000},
		{Center: e2eCenter, RadiusMeters: 1e6, StartMillis: 0, EndMillis: 1 << 40},
	} {
		lids, fids := e2eQueryIDs(t, leader, q), e2eQueryIDs(t, fsrv2, q)
		if fmt.Sprint(lids) != fmt.Sprint(fids) {
			t.Fatalf("query %+v: leader %v, follower %v", q, lids, fids)
		}
	}

	// The follower's status reflects the catch-up.
	st := fol2.Status()
	if !st.CaughtUp || st.Bootstraps == 0 {
		t.Errorf("follower status after convergence: %+v", st)
	}
}

// TestReplicaForgetNotResurrected is the privacy-critical case: a
// provider forgotten on the leader while the follower is down must not
// resurrect when that follower restarts from its durable directory and
// re-catches-up.
func TestReplicaForgetNotResurrected(t *testing.T) {
	leaderStore := openDisk(t, t.TempDir())
	leader, ts := newLeader(t, leaderStore)
	defer ts.Close()
	defer leaderStore.Close()

	if _, err := leader.Register(wire.Upload{Provider: "alice", Reps: []segment.Representative{
		mkRep(geo.Offset(e2eCenter, 180, 30), 0, 0, 5000),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := leader.Register(wire.Upload{Provider: "mallory", Reps: []segment.Representative{
		mkRep(geo.Offset(e2eCenter, 45, 25), 225, 0, 5000),
		mkRep(geo.Offset(e2eCenter, 90, 25), 270, 1000, 6000),
	}}); err != nil {
		t.Fatal(err)
	}

	followerDir := t.TempDir()
	fst := openDisk(t, followerDir)
	fsrv, fol := newFollower(t, fst, ts.URL)
	waitConverged(t, leader, fsrv, fol)
	if n := providerCount(fsrv, "mallory"); n != 2 {
		t.Fatalf("follower replicated %d mallory entries, want 2", n)
	}

	// Kill the follower, then forget mallory on the leader while it is
	// down. Checkpoint too, so the removal is not even in the shipped
	// log anymore — the restarted follower must get it via bootstrap.
	fol.Close()
	if removed, err := leader.ForgetProvider("mallory"); err != nil || removed != 2 {
		t.Fatalf("forget removed %d, err %v", removed, err)
	}
	if err := leaderStore.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	fst2 := openDisk(t, followerDir)
	defer fst2.Close()
	if providerEntries(fst2.Entries(), "mallory") != 2 {
		t.Fatal("kill-point lost the replicated entries; harness is vacuous")
	}
	fsrv2, fol2 := newFollower(t, fst2, ts.URL)
	defer fol2.Close()
	waitConverged(t, leader, fsrv2, fol2)

	if n := providerCount(fsrv2, "mallory"); n != 0 {
		t.Fatalf("forgotten provider resurrected on restarted follower: %d entries", n)
	}
	// And the follower's own durable state dropped them too: a restart
	// without a leader must not bring them back either.
	if providerEntries(fst2.Entries(), "mallory") != 0 {
		t.Fatal("forgotten provider survives in the follower's journal")
	}
}

// TestReplicaRejectsMutations verifies the read replica's write fence
// over real HTTP: 409 with a JSON body naming the leader.
func TestReplicaRejectsMutations(t *testing.T) {
	leaderStore := openDisk(t, t.TempDir())
	_, ts := newLeader(t, leaderStore)
	defer ts.Close()
	defer leaderStore.Close()

	fsrv, fol := newFollower(t, store.NewMem(), ts.URL)
	defer fol.Close()
	fts := httptest.NewServer(fsrv.Handler())
	defer fts.Close()

	up, err := json.Marshal(wire.Upload{Provider: "alice", Reps: []segment.Representative{
		mkRep(e2eCenter, 0, 0, 5000),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, method, path, body string
	}{
		{"upload", http.MethodPost, "/upload", string(up)},
		{"forget", http.MethodPost, "/forget?provider=alice", ""},
	} {
		req, err := http.NewRequest(tc.method, fts.URL+tc.path, bytes.NewReader([]byte(tc.body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s on replica: status %d, want 409 (body %s)", tc.name, resp.StatusCode, body)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("%s on replica: non-JSON error body %q: %v", tc.name, body, err)
		}
		if er.Leader != ts.URL {
			t.Fatalf("%s on replica: error names leader %q, want %q", tc.name, er.Leader, ts.URL)
		}
	}

	// The read path stays open.
	resp, err := http.Get(fts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st server.Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || !st.ReadOnly || st.Leader != ts.URL {
		t.Fatalf("replica stats = %+v, err %v", st, err)
	}
	if st.Replication == nil {
		t.Fatal("replica stats lack the replication block")
	}
}

// TestReplicaFailoverByRestart: a durable replica restarted without a
// leader serves its replicated state writable, with id assignment
// resuming past every replicated id.
func TestReplicaFailoverByRestart(t *testing.T) {
	leaderStore := openDisk(t, t.TempDir())
	leader, ts := newLeader(t, leaderStore)
	defer ts.Close()
	defer leaderStore.Close()
	ids, err := leader.Register(wire.Upload{Provider: "alice", Reps: []segment.Representative{
		mkRep(geo.Offset(e2eCenter, 180, 30), 0, 0, 5000),
		mkRep(geo.Offset(e2eCenter, 90, 40), 270, 1000, 6000),
	}})
	if err != nil {
		t.Fatal(err)
	}

	followerDir := t.TempDir()
	fst := openDisk(t, followerDir)
	fsrv, fol := newFollower(t, fst, ts.URL)
	waitConverged(t, leader, fsrv, fol)
	fol.Close() // leader lost; replica abandoned without shutdown

	// Promote: reopen the directory as a plain writable server.
	pst := openDisk(t, followerDir)
	defer pst.Close()
	promoted, err := server.New(server.Config{
		Camera:   fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100},
		Store:    pst,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := promoted.Index().Len(); got != 2 {
		t.Fatalf("promoted replica serves %d entries, want 2", got)
	}
	newIDs, err := promoted.Register(wire.Upload{Provider: "bob", Reps: []segment.Representative{
		mkRep(e2eCenter, 0, 2000, 7000),
	}})
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if newIDs[0] <= old {
			t.Fatalf("promoted id %d collides with replicated id %d", newIDs[0], old)
		}
	}
}

func providerCount(s *server.Server, provider string) int {
	return providerEntries(s.Index().Entries(), provider)
}

func providerEntries(entries []index.Entry, provider string) int {
	n := 0
	for _, e := range entries {
		if e.Provider == provider {
			n++
		}
	}
	return n
}
