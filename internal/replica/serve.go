// Leader side of the protocol: Serve answers one /replicate request
// from a LogSource (implemented by *store.Disk).
package replica

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"time"

	"fovr/internal/index"
	"fovr/internal/snapshot"
	"fovr/internal/store"
)

// LogSource is the leader-side store surface Serve reads from.
// *store.Disk implements it; a non-durable store cannot lead because it
// has no log to ship.
type LogSource interface {
	// StoreID identifies the data directory across restarts.
	StoreID() string
	// LogCursor returns the live log head.
	LogCursor() (gen uint64, off int64)
	// CaptureState returns the committed entries and the cursor they
	// correspond to.
	CaptureState() (entries []index.Entry, gen uint64, off int64)
	// ReadLog returns whole committed frames from a position.
	ReadLog(gen uint64, off int64) ([]byte, store.TailStatus, error)
	// WaitForLog blocks until the position has news, ctx expires, or the
	// store closes.
	WaitForLog(ctx context.Context, gen uint64, off int64) error
}

// TieredSource is the additional leader surface for the segment-wise
// bootstrap; a tiered *store.Disk implements it. A leader whose source
// lacks it simply answers tiered query params with the legacy protocol
// (the follower detects the kind header and falls back).
type TieredSource interface {
	LogSource
	// ManifestSnapshot returns the served cold-tier state.
	ManifestSnapshot() store.ManifestSnapshot
	// ReadSegment returns the verbatim bytes of live segment (window,
	// seq); an error means the manifest moved past it.
	ReadSegment(window int64, seq uint64) ([]byte, error)
	// CaptureMem atomically captures the memtable, its WAL cursor, and
	// the manifest hash at that instant.
	CaptureMem() (entries []index.Entry, gen uint64, off int64, hash uint64)
}

// MaxWait caps the client-requested long-poll hold. It must stay under
// the API server's write timeout (30s), or idle polls would be cut off
// as slow responses.
const MaxWait = 25 * time.Second

// ServeResult summarizes one served replication request for the
// caller's metrics and logs.
type ServeResult struct {
	Stream  string // StreamSnapshot or StreamWAL
	Bytes   int64  // body bytes written
	Entries int    // snapshot entries (StreamSnapshot only)
}

// Serve answers one GET /replicate request: a snapshot stream for a
// bootstrap or unservable cursor, a WAL tail otherwise, long-polling up
// to the requested wait when the follower is caught up. A mid-stream
// write failure is returned for logging; the status line is already
// gone by then, so the cut body is the client's signal (the snapshot
// CRC trailer and the WAL frame checksums both detect it).
func Serve(w http.ResponseWriter, r *http.Request, src LogSource) (ServeResult, error) {
	q := r.URL.Query()
	gen, _ := strconv.ParseUint(q.Get("gen"), 10, 64)
	off, _ := strconv.ParseInt(q.Get("off"), 10, 64)
	wait, _ := time.ParseDuration(q.Get("wait"))
	if wait > MaxWait {
		wait = MaxWait
	}
	// Segment-wise bootstrap legs, answered only by a tiered source; a
	// legacy source ignores the params and serves a plain snapshot, which
	// the client recognizes by the kind header and falls back on.
	if ts, ok := src.(TieredSource); ok {
		switch {
		case q.Get("manifest") != "":
			return serveManifest(w, ts)
		case q.Get("segment") != "":
			window, _ := strconv.ParseInt(q.Get("segment"), 10, 64)
			seq, _ := strconv.ParseUint(q.Get("seq"), 10, 64)
			return serveSegment(w, ts, window, seq)
		case q.Get("mem") != "":
			return serveMem(w, ts)
		}
	}
	if gen == 0 {
		return serveSnapshot(w, src)
	}
	deadline := time.Now().Add(wait)
	for {
		data, status, err := src.ReadLog(gen, off)
		if err != nil {
			http.Error(w, "replicate: "+err.Error(), http.StatusInternalServerError)
			return ServeResult{}, err
		}
		switch status {
		case store.TailReset:
			return serveSnapshot(w, src)
		case store.TailAdvance:
			return serveWAL(w, src, nil, Cursor{Gen: gen + 1, Off: 0})
		}
		if len(data) == 0 {
			if remain := time.Until(deadline); remain > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), remain)
				err := src.WaitForLog(ctx, gen, off)
				cancel()
				if err == nil {
					continue // news arrived; re-read
				}
				// Timeout, client gone, or store closed: answer empty.
			}
		}
		return serveWAL(w, src, data, Cursor{Gen: gen, Off: off + int64(len(data))})
	}
}

func setCursorHeaders(w http.ResponseWriter, src LogSource, next Cursor) {
	leadGen, leadOff := src.LogCursor()
	h := w.Header()
	h.Set(HeaderStoreID, src.StoreID())
	h.Set(HeaderNextGen, strconv.FormatUint(next.Gen, 10))
	h.Set(HeaderNextOff, strconv.FormatInt(next.Off, 10))
	h.Set(HeaderLeadGen, strconv.FormatUint(leadGen, 10))
	h.Set(HeaderLeadOff, strconv.FormatInt(leadOff, 10))
}

func serveWAL(w http.ResponseWriter, src LogSource, data []byte, next Cursor) (ServeResult, error) {
	w.Header().Set(HeaderStream, StreamWAL)
	w.Header().Set("Content-Type", "application/octet-stream")
	setCursorHeaders(w, src, next)
	n, err := w.Write(data)
	return ServeResult{Stream: StreamWAL, Bytes: int64(n)}, err
}

// countWriter tallies body bytes so ServeResult can report how much a
// snapshot stream shipped even when snapshot.Write fails mid-stream.
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func serveSnapshot(w http.ResponseWriter, src LogSource) (ServeResult, error) {
	entries, gen, off := src.CaptureState()
	w.Header().Set(HeaderStream, StreamSnapshot)
	w.Header().Set("Content-Type", "application/octet-stream")
	setCursorHeaders(w, src, Cursor{Gen: gen, Off: off})
	cw := &countWriter{w: w}
	err := snapshot.Write(cw, entries)
	return ServeResult{Stream: StreamSnapshot, Bytes: cw.n, Entries: len(entries)}, err
}

// serveManifest ships the cold-tier manifest as JSON: which segments a
// bootstrapping follower needs, and the tombstones it installs with
// them.
func serveManifest(w http.ResponseWriter, src TieredSource) (ServeResult, error) {
	ms := src.ManifestSnapshot()
	w.Header().Set(HeaderStream, StreamManifest)
	w.Header().Set("Content-Type", "application/json")
	gen, off := src.LogCursor()
	setCursorHeaders(w, src, Cursor{Gen: gen, Off: off})
	data, err := json.Marshal(ms)
	if err != nil {
		http.Error(w, "replicate: "+err.Error(), http.StatusInternalServerError)
		return ServeResult{}, err
	}
	n, err := w.Write(data)
	return ServeResult{Stream: StreamManifest, Bytes: int64(n)}, err
}

// serveSegment ships one live segment's verbatim file bytes. A segment
// the manifest has moved past answers 404; the follower refetches the
// manifest.
func serveSegment(w http.ResponseWriter, src TieredSource, window int64, seq uint64) (ServeResult, error) {
	raw, err := src.ReadSegment(window, seq)
	if err != nil {
		http.Error(w, "replicate: "+err.Error(), http.StatusNotFound)
		return ServeResult{Stream: StreamSegment}, nil
	}
	w.Header().Set(HeaderStream, StreamSegment)
	w.Header().Set("Content-Type", "application/octet-stream")
	gen, off := src.LogCursor()
	setCursorHeaders(w, src, Cursor{Gen: gen, Off: off})
	n, err := w.Write(raw)
	return ServeResult{Stream: StreamSegment, Bytes: int64(n)}, err
}

// serveMem ships the memtable in snapshot format, stamped with the WAL
// cursor to resume streaming from and the manifest hash the capture
// was consistent with.
func serveMem(w http.ResponseWriter, src TieredSource) (ServeResult, error) {
	entries, gen, off, hash := src.CaptureMem()
	w.Header().Set(HeaderStream, StreamMem)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderManifestHash, strconv.FormatUint(hash, 10))
	setCursorHeaders(w, src, Cursor{Gen: gen, Off: off})
	cw := &countWriter{w: w}
	err := snapshot.Write(cw, entries)
	return ServeResult{Stream: StreamMem, Bytes: cw.n, Entries: len(entries)}, err
}
