// Package replica implements leader-follower replication for the cloud
// server: WAL shipping, read replicas, and catch-up recovery. The paper
// (Section V) runs retrieval on one process; the workloads this repo
// targets are read-heavy — as in POI-detection pipelines over
// georeferenced FoV streams, query load dwarfs ingest — so one durable
// ingest leader feeding any number of read-only followers is how the
// system scales horizontally.
//
// The subsystem is a thin protocol over two substrates that already
// exist: the store's CRC-framed WAL (the shipped bytes are the leader's
// log frames, verbatim) and the snapshot codec (the bootstrap payload is
// a checkpoint-format state capture). One HTTP endpoint on the leader
// carries both:
//
//	GET /replicate                 — bootstrap: full state capture
//	GET /replicate?gen=G&off=O     — log tail from position (G, O)
//	GET /replicate?...&wait=10s    — long-poll: hold the request until
//	                                 new records commit (capped at MaxWait)
//
// Responses are typed by the X-Fovr-Stream header ("snapshot" or "wal")
// and always carry the cursor to resume from after applying the body
// (X-Fovr-Next-Gen/-Off), the leader's live head for lag accounting
// (X-Fovr-Lead-Gen/-Off), and the leader store's persistent identity
// (X-Fovr-Store-Id). A follower whose cursor the leader cannot serve —
// it lagged past a checkpoint's log truncation, the leader's history was
// replaced, or the follower restarted and asked from scratch — receives
// a snapshot stream instead of an error: catch-up recovery IS the
// bootstrap path, there is no separate repair protocol.
//
// What a follower guarantees: its state is always some prefix of the
// leader's append order (bounded staleness, never invented state).
// Mutations are rejected by the read-only server with ErrReadOnly / HTTP
// 409 naming the leader. Failover is by restart: start the follower
// process without -replica-of and it serves its replicated state as a
// writable leader, with id assignment resuming past every replicated id.
package replica

import (
	"fmt"

	"fovr/internal/index"
	"fovr/internal/store"
)

// Cursor is a replication position: the byte just past the last applied
// record in the leader's log segment wal-<Gen>.log. The zero Cursor
// means "no state; bootstrap me".
type Cursor struct {
	Gen uint64 `json:"gen"`
	Off int64  `json:"off"`
}

// IsZero reports whether the cursor asks for a bootstrap.
func (c Cursor) IsZero() bool { return c.Gen == 0 }

func (c Cursor) String() string { return fmt.Sprintf("%d/%d", c.Gen, c.Off) }

// Stream kinds carried in the HeaderStream response header. The first
// two are the legacy protocol; the last three are the segment-wise
// bootstrap a tiered leader additionally serves (?manifest=1,
// ?segment=W&seq=N, ?mem=1).
const (
	StreamSnapshot = "snapshot"
	StreamWAL      = "wal"
	StreamManifest = "manifest"
	StreamSegment  = "segment"
	StreamMem      = "memsnapshot"
)

// Protocol headers. Every /replicate response carries Stream, StoreID,
// the Next cursor, and the Lead cursor; memsnapshot responses also
// carry ManifestHash so the follower can detect the sealed set moving
// between its manifest fetch and its memtable fetch.
const (
	HeaderStream       = "X-Fovr-Stream"
	HeaderStoreID      = "X-Fovr-Store-Id"
	HeaderNextGen      = "X-Fovr-Next-Gen"
	HeaderNextOff      = "X-Fovr-Next-Off"
	HeaderLeadGen      = "X-Fovr-Lead-Gen"
	HeaderLeadOff      = "X-Fovr-Lead-Off"
	HeaderManifestHash = "X-Fovr-Manifest-Hash"
)

// Batch is one decoded /replicate response.
type Batch struct {
	// Kind is StreamSnapshot or StreamWAL.
	Kind string
	// Entries is the full state capture (StreamSnapshot only).
	Entries []index.Entry
	// Frames holds verbatim WAL frames (StreamWAL only; may be empty
	// when the long poll expired with nothing new).
	Frames []byte
	// Next is the cursor to resume from after applying this batch.
	Next Cursor
	// Lead is the leader's live log head when the batch was served.
	Lead Cursor
	// StoreID identifies the leader's data directory; a change mid-tail
	// means the history was replaced and the follower must re-bootstrap.
	StoreID string
	// ManifestHash is the leader's manifest fingerprint the batch was
	// captured against (StreamMem only).
	ManifestHash uint64
}

// ManifestBatch is one decoded ?manifest=1 response: the leader's
// cold-tier state plus the usual identity/lead headers.
type ManifestBatch struct {
	Manifest store.ManifestSnapshot
	StoreID  string
	Lead     Cursor
}
