// Follower side of the protocol: a pull loop that fetches batches from
// the leader and folds them into the local server through the same
// Store-backed apply path ordinary ingest uses.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"fovr/internal/index"
	"fovr/internal/obs"
	"fovr/internal/store"
)

// Applier is the state sink the follower feeds; *server.Server
// implements it. ApplyRegister and ApplyRemove mirror one leader WAL
// record each, carrying the originating leader request's trace ID (""
// when that request was untraced); ResetState replaces the state
// wholesale (bootstrap). After a failed apply the state may be
// inconsistent with the cursor; the follower recovers by
// re-bootstrapping, never by retrying.
type Applier interface {
	ApplyRegister(entries []index.Entry, trace string) error
	ApplyRemove(ids []uint64, trace string) error
	ResetState(entries []index.Entry) error
}

// Fetcher performs one /replicate round-trip; *client.Replicator
// implements it over HTTP. wait is the long-poll hold to request.
type Fetcher interface {
	Fetch(ctx context.Context, cur Cursor, wait time.Duration) (*Batch, error)
}

// Options configures a Follower.
type Options struct {
	// Fetch pulls batches from the leader. Required.
	Fetch Fetcher
	// Apply folds batches into local state. Required.
	Apply Applier
	// Segments, when non-nil AND Fetch implements TieredFetcher, enables
	// the segment-wise bootstrap with per-segment resume; nil keeps the
	// legacy monolithic snapshot.
	Segments SegmentSink
	// Poll is the long-poll wait requested per fetch; it also paces the
	// retry loop after fetch errors. Zero means 10s.
	Poll time.Duration
	// Registry receives the fovr_replica_* metrics; nil selects
	// obs.Default.
	Registry *obs.Registry
	// Logger receives replication diagnostics; nil silences them.
	Logger *slog.Logger
}

// Status is a snapshot of the follower's replication state, served on
// the read replica's /stats.
type Status struct {
	// State is "bootstrapping" until the first successful batch, then
	// "streaming".
	State string `json:"state"`
	// Cursor is the position up to which the leader's log is applied.
	Cursor Cursor `json:"cursor"`
	// Lead is the leader's log head as of the last batch.
	Lead Cursor `json:"lead"`
	// LagBytes is Lead.Off-Cursor.Off when both cursors are in the same
	// generation; -1 when the follower is a generation behind and the
	// byte distance is unknowable (the leader truncated that log).
	LagBytes int64 `json:"lagBytes"`
	// CaughtUp reports whether the last batch left the cursor at the
	// leader's head.
	CaughtUp       bool   `json:"caughtUp"`
	AppliedRecords int64  `json:"appliedRecords"`
	AppliedBytes   int64  `json:"appliedBytes"`
	Bootstraps     int64  `json:"bootstraps"`
	FetchErrors    int64  `json:"fetchErrors"`
	ApplyErrors    int64  `json:"applyErrors"`
	LeaderStoreID  string `json:"leaderStoreID,omitempty"`
	LastError      string `json:"lastError,omitempty"`
}

// Follower owns the replication pull loop. Create with Start; stop with
// Close.
type Follower struct {
	opts Options
	log  *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	st      Status
	changed chan struct{} // closed+replaced on every status update

	applied         *obs.Counter
	appliedBytes    *obs.Counter
	bootstraps      *obs.Counter
	fetchErrs       *obs.Counter
	applyErrs       *obs.Counter
	segFetched      *obs.Counter
	segSkipped      *obs.Counter
	segFetchedBytes *obs.Counter
}

// Start validates opts, registers the replica metrics, and launches the
// pull loop.
func Start(opts Options) (*Follower, error) {
	if opts.Fetch == nil || opts.Apply == nil {
		return nil, errors.New("replica: Fetch and Apply are required")
	}
	if opts.Poll <= 0 {
		opts.Poll = 10 * time.Second
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	if opts.Logger == nil {
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	f := &Follower{
		opts:    opts,
		log:     opts.Logger,
		ctx:     ctx,
		cancel:  cancel,
		st:      Status{State: "bootstrapping", LagBytes: -1},
		changed: make(chan struct{}),
	}
	reg := opts.Registry
	f.applied = reg.Counter("fovr_replica_applied_records_total")
	f.appliedBytes = reg.Counter("fovr_replica_applied_bytes_total")
	f.bootstraps = reg.Counter("fovr_replica_bootstraps_total")
	f.fetchErrs = reg.Counter("fovr_replica_fetch_errors_total")
	f.applyErrs = reg.Counter("fovr_replica_apply_errors_total")
	f.segFetched = reg.Counter("fovr_replica_segments_fetched_total")
	f.segSkipped = reg.Counter("fovr_replica_segments_skipped_total")
	f.segFetchedBytes = reg.Counter("fovr_replica_segment_fetched_bytes_total")
	reg.GaugeFunc("fovr_replica_lag_bytes", func() float64 { return float64(f.Status().LagBytes) })
	reg.GaugeFunc("fovr_replica_caught_up", func() float64 {
		if f.Status().CaughtUp {
			return 1
		}
		return 0
	})
	f.wg.Add(1)
	go obs.LabelWorker("replica.follower", f.run)
	return f, nil
}

// Close stops the pull loop and waits for it to exit. The local state
// keeps whatever prefix was applied.
func (f *Follower) Close() {
	f.cancel()
	f.wg.Wait()
}

// Status returns the current replication status.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st
}

// WaitCaughtUp blocks until the follower has observed a caught-up state
// (cursor at the leader's head) or ctx expires. It does not guarantee
// the follower is still caught up on return — the leader may have
// appended since — only that the replicated prefix reached the head the
// leader reported at least once.
func (f *Follower) WaitCaughtUp(ctx context.Context) error {
	for {
		f.mu.Lock()
		ok := f.st.CaughtUp
		ch := f.changed
		f.mu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		case <-f.ctx.Done():
			return errors.New("replica: follower closed")
		}
	}
}

// update mutates the status under the lock and wakes WaitCaughtUp.
func (f *Follower) update(mut func(*Status)) {
	f.mu.Lock()
	mut(&f.st)
	close(f.changed)
	f.changed = make(chan struct{})
	f.mu.Unlock()
}

// run is the pull loop: fetch, apply, advance; bootstrap on anything
// that breaks the tail.
func (f *Follower) run() {
	defer f.wg.Done()
	errDelay := time.Second
	for f.ctx.Err() == nil {
		cur := f.Status().Cursor
		if cur.IsZero() && f.opts.Segments != nil {
			if tf, ok := f.opts.Fetch.(TieredFetcher); ok {
				switch err := f.bootstrapTiered(tf); {
				case err == nil:
					errDelay = time.Second
					continue // cursor installed; stream the WAL tail
				case errors.Is(err, ErrTieredUnsupported):
					// Legacy snapshot this round; probe again next bootstrap.
				default:
					if f.ctx.Err() != nil {
						return
					}
					f.fetchErrs.Inc()
					f.update(func(st *Status) { st.FetchErrors++; st.LastError = err.Error(); st.CaughtUp = false })
					f.log.Warn("replica tiered bootstrap failed", "err", err)
					f.sleep(min(errDelay, f.opts.Poll))
					errDelay = min(errDelay*2, 30*time.Second)
					continue
				}
			}
		}
		start := time.Now()
		b, err := f.opts.Fetch.Fetch(f.ctx, cur, f.opts.Poll)
		if err != nil {
			if f.ctx.Err() != nil {
				return
			}
			f.fetchErrs.Inc()
			f.update(func(st *Status) { st.FetchErrors++; st.LastError = err.Error(); st.CaughtUp = false })
			f.log.Warn("replica fetch failed", "cursor", cur, "err", err)
			f.sleep(min(errDelay, f.opts.Poll))
			errDelay = min(errDelay*2, 30*time.Second)
			continue
		}
		errDelay = time.Second
		f.handle(cur, b)
		// Anti-spin floor: a leader that answers an idle poll instantly
		// (wait unsupported or zero) must not turn the loop into a busy
		// wait.
		if b.Kind == StreamWAL && len(b.Frames) == 0 && time.Since(start) < 10*time.Millisecond {
			f.sleep(10 * time.Millisecond)
		}
	}
}

// handle folds one batch into local state and advances the cursor. Any
// inconsistency — store identity changed, frames that do not decode,
// an apply failure — zeroes the cursor so the next fetch re-bootstraps.
func (f *Follower) handle(cur Cursor, b *Batch) {
	switch b.Kind {
	case StreamSnapshot:
		if err := f.opts.Apply.ResetState(b.Entries); err != nil {
			f.applyErrs.Inc()
			f.update(func(st *Status) {
				st.ApplyErrors++
				st.LastError = fmt.Sprintf("reset: %v", err)
				st.Cursor = Cursor{}
				st.CaughtUp = false
			})
			f.log.Error("replica bootstrap apply failed", "entries", len(b.Entries), "err", err)
			f.sleep(f.opts.Poll)
			return
		}
		f.bootstraps.Inc()
		f.update(func(st *Status) {
			st.State = "streaming"
			st.Bootstraps++
			st.Cursor = b.Next
			st.LeaderStoreID = b.StoreID
			st.LastError = ""
			setLag(st, b)
		})
		f.log.Info("replica bootstrapped",
			"entries", len(b.Entries), "cursor", b.Next, "leaderStore", b.StoreID)

	case StreamWAL:
		leaderID := f.Status().LeaderStoreID
		if b.StoreID != "" && leaderID != "" && b.StoreID != leaderID {
			// Same URL, different data directory: the history this tail
			// belongs to is gone.
			f.log.Warn("leader store identity changed; re-bootstrapping",
				"was", leaderID, "now", b.StoreID)
			f.update(func(st *Status) { st.Cursor = Cursor{}; st.CaughtUp = false })
			return
		}
		recs, valid, err := store.DecodeWAL(b.Frames)
		if err != nil || valid != len(b.Frames) {
			if err == nil {
				err = fmt.Errorf("short frame tail at %d of %d", valid, len(b.Frames))
			}
			f.applyErrs.Inc()
			f.update(func(st *Status) {
				st.ApplyErrors++
				st.LastError = fmt.Sprintf("decode shipped frames: %v", err)
				st.Cursor = Cursor{}
				st.CaughtUp = false
			})
			f.log.Error("replica stream damaged; re-bootstrapping", "err", err)
			return
		}
		for _, rec := range recs {
			if err := applyRecord(f.opts.Apply, rec); err != nil {
				f.applyErrs.Inc()
				f.update(func(st *Status) {
					st.ApplyErrors++
					st.LastError = fmt.Sprintf("apply: %v", err)
					st.Cursor = Cursor{}
					st.CaughtUp = false
				})
				f.log.Error("replica apply failed; re-bootstrapping", "err", err)
				return
			}
		}
		f.applied.Add(int64(len(recs)))
		f.appliedBytes.Add(int64(len(b.Frames)))
		f.update(func(st *Status) {
			st.State = "streaming"
			st.AppliedRecords += int64(len(recs))
			st.AppliedBytes += int64(len(b.Frames))
			st.Cursor = b.Next
			if b.StoreID != "" {
				st.LeaderStoreID = b.StoreID
			}
			st.LastError = ""
			setLag(st, b)
		})

	default:
		f.update(func(st *Status) { st.LastError = fmt.Sprintf("unknown stream kind %q", b.Kind) })
		f.log.Error("replica batch with unknown kind", "kind", b.Kind)
		f.sleep(f.opts.Poll)
	}
}

// setLag derives lag from the batch's lead cursor (st.Cursor already
// advanced).
func setLag(st *Status, b *Batch) {
	st.Lead = b.Lead
	switch {
	case b.Lead.Gen == st.Cursor.Gen:
		st.LagBytes = b.Lead.Off - st.Cursor.Off
	default:
		st.LagBytes = -1
	}
	st.CaughtUp = st.LagBytes == 0
}

// applyRecord dispatches one decoded WAL record to the Applier,
// forwarding the propagated trace ID the leader stamped into it.
func applyRecord(a Applier, rec store.Record) error {
	switch {
	case len(rec.Entries) > 0:
		return a.ApplyRegister(rec.Entries, rec.Trace)
	case len(rec.IDs) > 0:
		return a.ApplyRemove(rec.IDs, rec.Trace)
	}
	return nil // empty record: nothing to fold
}

// sleep pauses without outliving Close.
func (f *Follower) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-f.ctx.Done():
	}
}
