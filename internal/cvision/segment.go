package cvision

import (
	"fmt"

	"fovr/internal/video"
)

// SegmentResult is one content-coherent run of frames found by the CV
// segmenter, as inclusive frame indices.
type SegmentResult struct {
	StartIndex, EndIndex int
}

// SegmentByDiff is the content-based counterpart of Algorithm 1: it walks
// the frame sequence and starts a new segment whenever the
// frame-differencing similarity between the segment's anchor frame and
// the current frame drops below threshold. It exists as the cost baseline
// for Fig. 6(a): identical control flow to the FoV segmenter, but each
// step touches every pixel of two frames instead of two 3-tuples.
func SegmentByDiff(frames []*video.Frame, threshold float64) ([]SegmentResult, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("cvision: threshold %v out of range (0, 1]", threshold)
	}
	if len(frames) == 0 {
		return nil, nil
	}
	var out []SegmentResult
	start := 0
	anchor := frames[0]
	for i := 1; i < len(frames); i++ {
		sim, err := DiffSimilarity(anchor, frames[i])
		if err != nil {
			return nil, err
		}
		if sim < threshold {
			out = append(out, SegmentResult{StartIndex: start, EndIndex: i - 1})
			start = i
			anchor = frames[i]
		}
	}
	out = append(out, SegmentResult{StartIndex: start, EndIndex: len(frames) - 1})
	return out, nil
}
