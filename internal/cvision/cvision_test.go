package cvision

import (
	"math"
	"math/rand"
	"testing"

	"fovr/internal/video"
)

func noiseFrame(rng *rand.Rand, w, h int) *video.Frame {
	f := video.NewFrame(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

func TestMeanAbsDiff(t *testing.T) {
	a := video.NewFrame(4, 4)
	b := video.NewFrame(4, 4)
	mad, err := MeanAbsDiff(a, b)
	if err != nil || mad != 0 {
		t.Fatalf("identical frames: mad=%v err=%v", mad, err)
	}
	b.Fill(10)
	mad, err = MeanAbsDiff(a, b)
	if err != nil || mad != 10 {
		t.Fatalf("uniform +10 frames: mad=%v err=%v", mad, err)
	}
	// Sign-insensitive.
	mad2, _ := MeanAbsDiff(b, a)
	if mad2 != mad {
		t.Fatal("MeanAbsDiff not symmetric")
	}
}

func TestMeanAbsDiffSizeMismatch(t *testing.T) {
	a := video.NewFrame(4, 4)
	b := video.NewFrame(5, 4)
	if _, err := MeanAbsDiff(a, b); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := DiffSimilarity(a, b); err == nil {
		t.Fatal("DiffSimilarity size mismatch accepted")
	}
}

func TestDiffSimilarityBounds(t *testing.T) {
	a := video.NewFrame(4, 4)
	sim, err := DiffSimilarity(a, a)
	if err != nil || sim != 1 {
		t.Fatalf("self similarity = %v, err %v", sim, err)
	}
	b := video.NewFrame(4, 4)
	b.Fill(255)
	sim, err = DiffSimilarity(a, b)
	if err != nil || sim != 0 {
		t.Fatalf("max-contrast similarity = %v, err %v", sim, err)
	}
}

func TestMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	frames := []*video.Frame{
		noiseFrame(rng, 8, 8),
		noiseFrame(rng, 8, 8),
		noiseFrame(rng, 8, 8),
	}
	m, err := Matrix(frames)
	if err != nil {
		t.Fatal(err)
	}
	minSeen := 2.0
	for i := range m {
		if m[i][i] != 1 {
			t.Fatalf("diagonal m[%d][%d] = %v", i, i, m[i][i])
		}
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatal("matrix not symmetric")
			}
			if m[i][j] < 0 || m[i][j] > 1 {
				t.Fatalf("entry out of range: %v", m[i][j])
			}
			if i != j && m[i][j] < minSeen {
				minSeen = m[i][j]
			}
		}
	}
	if minSeen != 0 {
		t.Fatalf("normalization must map the worst pair to 0, got %v", minSeen)
	}
}

func TestMatrixIdenticalFrames(t *testing.T) {
	f := video.NewFrame(8, 8)
	m, err := Matrix([]*video.Frame{f, f.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	if m[0][1] != 1 {
		t.Fatalf("identical frames normalized to %v, want 1", m[0][1])
	}
}

func TestNormalizedSeries(t *testing.T) {
	base := video.NewFrame(8, 8)
	mid := video.NewFrame(8, 8)
	mid.Fill(100)
	far := video.NewFrame(8, 8)
	far.Fill(200)
	s, err := NormalizedSeries(base, []*video.Frame{base.Clone(), mid, far})
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 {
		t.Fatalf("series[0] = %v, want 1", s[0])
	}
	if s[2] != 0 {
		t.Fatalf("series[max] = %v, want 0", s[2])
	}
	if s[1] <= s[2] || s[1] >= s[0] {
		t.Fatalf("series not monotone: %v", s)
	}
}

func TestHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := noiseFrame(rng, 64, 64)
	h := ExtractHistogram(f)
	var sum float64
	for _, v := range h {
		if v < 0 {
			t.Fatal("negative bin")
		}
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("histogram sums to %v, want 1", sum)
	}
	if got := h.Similarity(h); math.Abs(got-1) > 1e-6 {
		t.Fatalf("self similarity = %v", got)
	}
	dark := video.NewFrame(64, 64)
	bright := video.NewFrame(64, 64)
	bright.Fill(255)
	hd, hb := ExtractHistogram(dark), ExtractHistogram(bright)
	if got := hd.Similarity(hb); got != 0 {
		t.Fatalf("disjoint histograms similarity = %v, want 0", got)
	}
	if h.SizeBytes() != 256 {
		t.Fatalf("SizeBytes = %d", h.SizeBytes())
	}
}

func TestBlockMean(t *testing.T) {
	// A frame with a bright left half and dark right half.
	f := video.NewFrame(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 32; x++ {
			f.Set(x, y, 200)
		}
	}
	b := ExtractBlockMean(f)
	if b[0] != 200 || b[BlockGrid-1] != 0 {
		t.Fatalf("block means wrong: left=%d right=%d", b[0], b[BlockGrid-1])
	}
	if got := b.Similarity(b); got != 1 {
		t.Fatalf("self similarity = %v", got)
	}
	var dark BlockMean
	if got := b.Similarity(dark); got >= 1 || got < 0 {
		t.Fatalf("cross similarity = %v", got)
	}
	if b.SizeBytes() != 64 {
		t.Fatalf("SizeBytes = %d", b.SizeBytes())
	}
	// Tiny frames degrade gracefully.
	tiny := ExtractBlockMean(video.NewFrame(4, 4))
	_ = tiny
}

func TestSegmentByDiffStaticVideo(t *testing.T) {
	f := video.NewFrame(16, 16)
	frames := []*video.Frame{f, f.Clone(), f.Clone(), f.Clone()}
	segs, err := SegmentByDiff(frames, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].StartIndex != 0 || segs[0].EndIndex != 3 {
		t.Fatalf("static video segmented as %+v", segs)
	}
}

func TestSegmentByDiffSplits(t *testing.T) {
	dark := video.NewFrame(16, 16)
	bright := video.NewFrame(16, 16)
	bright.Fill(255)
	frames := []*video.Frame{dark, dark.Clone(), bright, bright.Clone(), dark.Clone()}
	segs, err := SegmentByDiff(frames, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := []SegmentResult{{0, 1}, {2, 3}, {4, 4}}
	if len(segs) != len(want) {
		t.Fatalf("got %+v, want %+v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestSegmentByDiffPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	frames := make([]*video.Frame, 40)
	for i := range frames {
		frames[i] = noiseFrame(rng, 8, 8)
	}
	segs, err := SegmentByDiff(frames, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	for _, s := range segs {
		if s.StartIndex != next || s.EndIndex < s.StartIndex {
			t.Fatalf("segments not a partition: %+v", segs)
		}
		next = s.EndIndex + 1
	}
	if next != len(frames) {
		t.Fatalf("segments cover %d of %d frames", next, len(frames))
	}
}

func TestSegmentByDiffValidation(t *testing.T) {
	if _, err := SegmentByDiff(nil, 0.5); err != nil {
		t.Fatal("empty input should be fine")
	}
	f := video.NewFrame(4, 4)
	for _, th := range []float64{0, -1, 1.5} {
		if _, err := SegmentByDiff([]*video.Frame{f}, th); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
	mixed := []*video.Frame{video.NewFrame(4, 4), video.NewFrame(5, 5)}
	if _, err := SegmentByDiff(mixed, 0.5); err == nil {
		t.Fatal("mixed-resolution input accepted")
	}
}

func TestMatrixParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frames := make([]*video.Frame, 17)
	for i := range frames {
		frames[i] = noiseFrame(rng, 24, 16)
	}
	want, err := Matrix(frames)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := MatrixParallel(frames, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d: (%d,%d) %v vs %v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
	// Edge cases.
	if m, err := MatrixParallel(nil, 4); err != nil || m != nil {
		t.Fatalf("empty input: %v %v", m, err)
	}
	mixed := []*video.Frame{video.NewFrame(4, 4), video.NewFrame(5, 5)}
	if _, err := MatrixParallel(mixed, 4); err == nil {
		t.Fatal("mixed sizes accepted")
	}
}
