package cvision

import (
	"math"
	"testing"

	"fovr/internal/render"
	"fovr/internal/video"
	"fovr/internal/world"
)

func rotatedPair(t *testing.T, deg float64) (*video.Frame, *video.Frame) {
	t.Helper()
	res := video.Resolution{Name: "flow", W: 320, H: 180}
	r := render.New(world.World{Seed: 21}, render.DefaultCamera)
	a, b := res.New(), res.New()
	r.Render(render.Pose{East: 3, North: 7, AzimuthDeg: 50}, a)
	r.Render(render.Pose{East: 3, North: 7, AzimuthDeg: 50 + deg}, b)
	return a, b
}

func TestEstimatePanRecoversRotation(t *testing.T) {
	for _, deg := range []float64{-8, -3, 0, 2, 5, 10} {
		a, b := rotatedPair(t, deg)
		got, err := EstimatePanDegrees(a, b, render.DefaultCamera.HFovDeg, 15)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-deg) > 1.0 {
			t.Fatalf("true pan %v°, estimated %v°", deg, got)
		}
	}
}

func TestEstimatePanIdenticalFrames(t *testing.T) {
	a, _ := rotatedPair(t, 0)
	got, err := EstimatePanPixels(a, a.Clone(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("identical frames estimated shift %d", got)
	}
}

func TestEstimatePanValidation(t *testing.T) {
	a := video.NewFrame(64, 36)
	b := video.NewFrame(32, 36)
	if _, err := EstimatePanPixels(a, b, 10); err == nil {
		t.Fatal("size mismatch accepted")
	}
	c := video.NewFrame(64, 36)
	if _, err := EstimatePanPixels(a, c, 0); err == nil {
		t.Fatal("zero maxShift accepted")
	}
	if _, err := EstimatePanPixels(a, c, 40); err == nil {
		t.Fatal("maxShift >= W/2 accepted")
	}
	if _, err := EstimatePanDegrees(a, c, 0, 5); err == nil {
		t.Fatal("zero hfov accepted")
	}
	if _, err := EstimatePanDegrees(a, c, 60, 0.0001); err != nil {
		t.Fatal("tiny maxShiftDeg must clamp to 1 px, not fail:", err)
	}
}

// TestPanCrossValidatesCompass is the integration the estimator exists
// for: across a rendered pan sequence, cumulative pixel-estimated
// rotation must track the (ground-truth) compass trace.
func TestPanCrossValidatesCompass(t *testing.T) {
	res := video.Resolution{Name: "flow", W: 320, H: 180}
	r := render.New(world.World{Seed: 22}, render.DefaultCamera)
	const step = 3.0 // degrees per frame
	var frames []*video.Frame
	for i := 0; i < 12; i++ {
		f := res.New()
		r.Render(render.Pose{AzimuthDeg: float64(i) * step}, f)
		frames = append(frames, f)
	}
	total := 0.0
	for i := 1; i < len(frames); i++ {
		d, err := EstimatePanDegrees(frames[i-1], frames[i], render.DefaultCamera.HFovDeg, 8)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	want := step * float64(len(frames)-1)
	if math.Abs(total-want) > 3 {
		t.Fatalf("cumulative estimated pan %v°, compass says %v°", total, want)
	}
}
