package cvision

import (
	"fmt"
	"math"

	"fovr/internal/video"
)

// Pan estimation: the inverse bridge between the CV world and the FoV
// world. The FoV pipeline trusts the compass; this estimator recovers the
// camera's horizontal rotation between two frames from pixels alone — the
// classic global-alignment reduction of optical flow — so a deployment
// can cross-validate a suspect compass (or substitute for one) at the
// cost of actually touching every pixel, which is exactly the trade the
// paper is about.

// EstimatePanPixels returns the horizontal shift in pixels that best
// aligns frame b to frame a (positive = the scene moved left, i.e. the
// camera panned right), searching shifts in [-maxShift, maxShift] by
// minimizing mean absolute difference over the overlapping columns of the
// upper half of the frame (the backdrop band, which moves rigidly under
// pan; the ground rows don't).
func EstimatePanPixels(a, b *video.Frame, maxShift int) (int, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("cvision: frame sizes differ")
	}
	if maxShift <= 0 || maxShift >= a.W/2 {
		return 0, fmt.Errorf("cvision: maxShift %d out of (0, W/2)", maxShift)
	}
	h := a.H / 2 // upper half only
	bestShift := 0
	bestMAD := math.Inf(1)
	for shift := -maxShift; shift <= maxShift; shift++ {
		var sum, count int64
		for y := 0; y < h; y++ {
			rowA := a.Pix[y*a.W : y*a.W+a.W]
			rowB := b.Pix[y*b.W : y*b.W+b.W]
			x0 := 0
			if shift > 0 {
				x0 = shift
			}
			x1 := a.W
			if shift < 0 {
				x1 = a.W + shift
			}
			for x := x0; x < x1; x++ {
				d := int(rowA[x]) - int(rowB[x-shift])
				if d < 0 {
					d = -d
				}
				sum += int64(d)
			}
			count += int64(x1 - x0)
		}
		if count == 0 {
			continue
		}
		mad := float64(sum) / float64(count)
		if mad < bestMAD {
			bestMAD = mad
			bestShift = shift
		}
	}
	return bestShift, nil
}

// EstimatePanDegrees converts the pixel shift between two frames into the
// camera rotation in degrees, given the camera's full horizontal field of
// view. Positive means the camera turned clockwise (to the right).
func EstimatePanDegrees(a, b *video.Frame, hfovDeg float64, maxShiftDeg float64) (float64, error) {
	if hfovDeg <= 0 || hfovDeg >= 180 {
		return 0, fmt.Errorf("cvision: hfov %v out of (0, 180)", hfovDeg)
	}
	focal := float64(a.W) / 2 / math.Tan(hfovDeg/2*math.Pi/180)
	maxShift := int(focal * math.Tan(maxShiftDeg*math.Pi/180))
	if maxShift < 1 {
		maxShift = 1
	}
	if maxShift >= a.W/2 {
		maxShift = a.W/2 - 1
	}
	px, err := EstimatePanPixels(a, b, maxShift)
	if err != nil {
		return 0, err
	}
	return math.Atan2(float64(px), focal) * 180 / math.Pi, nil
}
