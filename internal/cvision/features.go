package cvision

import (
	"math/bits"
	"sort"

	"fovr/internal/video"
)

// This file implements the "local feature" class of content descriptor
// (Section VIII: SIFT and its variants) at laptop scale: Harris corner
// detection plus a BRIEF-style binary patch descriptor with Hamming
// matching. It exists to put real numbers behind the paper's claim that
// local features are the heaviest descriptor class — per-frame extraction
// walks every pixel several times and produces kilobytes, versus the
// FoV's ~20 bytes per *segment*.

// Corner is a detected interest point with its Harris response.
type Corner struct {
	X, Y     int
	Response float64
}

// patchRadius is the descriptor sampling radius; corners closer than this
// to the border are discarded.
const patchRadius = 8

// harrisK is the standard Harris trace weight.
const harrisK = 0.05

// Corners runs Harris corner detection: Sobel gradients, windowed second
// moment matrix, response map, 3x3 non-maximum suppression, top-N by
// response.
func Corners(f *video.Frame, maxCorners int) []Corner {
	if maxCorners <= 0 || f.W < 2*patchRadius+3 || f.H < 2*patchRadius+3 {
		return nil
	}
	w, h := f.W, f.H
	ix := make([]float64, w*h)
	iy := make([]float64, w*h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			// Sobel.
			gx := -int(f.At(x-1, y-1)) + int(f.At(x+1, y-1)) +
				-2*int(f.At(x-1, y)) + 2*int(f.At(x+1, y)) +
				-int(f.At(x-1, y+1)) + int(f.At(x+1, y+1))
			gy := -int(f.At(x-1, y-1)) - 2*int(f.At(x, y-1)) - int(f.At(x+1, y-1)) +
				int(f.At(x-1, y+1)) + 2*int(f.At(x, y+1)) + int(f.At(x+1, y+1))
			ix[y*w+x] = float64(gx)
			iy[y*w+x] = float64(gy)
		}
	}
	// Harris response with a 3x3 structure window.
	resp := make([]float64, w*h)
	for y := 2; y < h-2; y++ {
		for x := 2; x < w-2; x++ {
			var sxx, syy, sxy float64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					gx := ix[(y+dy)*w+x+dx]
					gy := iy[(y+dy)*w+x+dx]
					sxx += gx * gx
					syy += gy * gy
					sxy += gx * gy
				}
			}
			det := sxx*syy - sxy*sxy
			trace := sxx + syy
			resp[y*w+x] = det - harrisK*trace*trace
		}
	}
	// Non-max suppression + border margin.
	var out []Corner
	for y := patchRadius + 1; y < h-patchRadius-1; y++ {
		for x := patchRadius + 1; x < w-patchRadius-1; x++ {
			r := resp[y*w+x]
			if r <= 0 {
				continue
			}
			// 3x3 non-max suppression; exact ties (plateaus, common on
			// synthetic images) are broken lexicographically so one
			// pixel of each plateau survives.
			isMax := true
			for dy := -1; dy <= 1 && isMax; dy++ {
				for dx := -1; dx <= 1; dx++ {
					if dx == 0 && dy == 0 {
						continue
					}
					n := resp[(y+dy)*w+x+dx]
					if n > r || (n == r && (dy < 0 || (dy == 0 && dx < 0))) {
						isMax = false
						break
					}
				}
			}
			if isMax {
				out = append(out, Corner{X: x, Y: y, Response: r})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Response > out[j].Response })
	if len(out) > maxCorners {
		out = out[:maxCorners]
	}
	return out
}

// LocalDescriptor is a 256-bit BRIEF-style binary patch descriptor.
type LocalDescriptor [32]byte

// LocalDescriptorBytes is the wire size of one keypoint descriptor
// (excluding its coordinates).
const LocalDescriptorBytes = 32

// Similarity returns 1 - normalized Hamming distance, in [0, 1].
func (d LocalDescriptor) Similarity(o LocalDescriptor) float64 {
	dist := 0
	for i := range d {
		dist += bits.OnesCount8(d[i] ^ o[i])
	}
	return 1 - float64(dist)/256
}

// briefPairs are the fixed pseudo-random sample-point pairs, generated
// once from a SplitMix64 stream so extraction is deterministic.
var briefPairs = func() [256][4]int8 {
	var pairs [256][4]int8
	x := uint64(0x9e3779b97f4a7c15)
	next := func() int8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return int8(int(z%uint64(2*patchRadius+1)) - patchRadius)
	}
	for i := range pairs {
		pairs[i] = [4]int8{next(), next(), next(), next()}
	}
	return pairs
}()

// Feature is a keypoint plus its descriptor.
type Feature struct {
	X, Y int
	Desc LocalDescriptor
}

// ExtractFeatures detects up to maxCorners Harris corners and describes
// each with a binary patch descriptor.
func ExtractFeatures(f *video.Frame, maxCorners int) []Feature {
	corners := Corners(f, maxCorners)
	out := make([]Feature, len(corners))
	for i, c := range corners {
		var d LocalDescriptor
		for b, p := range briefPairs {
			a := f.At(c.X+int(p[0]), c.Y+int(p[1]))
			bb := f.At(c.X+int(p[2]), c.Y+int(p[3]))
			if a > bb {
				d[b/8] |= 1 << (b % 8)
			}
		}
		out[i] = Feature{X: c.X, Y: c.Y, Desc: d}
	}
	return out
}

// MatchSimilarity scores two feature sets in [0, 1]: for each feature of
// the smaller set, greedily find its best Hamming match in the other and
// average the match qualities. Empty sets score 0 against anything
// non-empty and 1 against each other.
func MatchSimilarity(a, b []Feature) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	sum := 0.0
	for _, fa := range a {
		best := 0.0
		for _, fb := range b {
			if s := fa.Desc.Similarity(fb.Desc); s > best {
				best = s
			}
		}
		sum += best
	}
	return sum / float64(len(a))
}
