package cvision

import (
	"testing"

	"fovr/internal/render"
	"fovr/internal/video"
	"fovr/internal/world"
)

// checkerFrame draws a frame with strong corners at known positions.
func checkerFrame(w, h, cell int) *video.Frame {
	f := video.NewFrame(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x/cell+y/cell)%2 == 0 {
				f.Set(x, y, 220)
			} else {
				f.Set(x, y, 30)
			}
		}
	}
	return f
}

func TestCornersOnCheckerboard(t *testing.T) {
	f := checkerFrame(96, 96, 16)
	corners := Corners(f, 100)
	if len(corners) < 10 {
		t.Fatalf("found only %d corners on a checkerboard", len(corners))
	}
	// Every detected corner must sit near a cell intersection (multiple
	// of 16 in both axes, within the 3x3 suppression slack).
	for _, c := range corners {
		dx := c.X % 16
		dy := c.Y % 16
		if dx > 8 {
			dx = 16 - dx
		}
		if dy > 8 {
			dy = 16 - dy
		}
		if dx > 2 || dy > 2 {
			t.Fatalf("corner at (%d,%d) not at a checker intersection", c.X, c.Y)
		}
	}
	// Sorted by response.
	for i := 1; i < len(corners); i++ {
		if corners[i].Response > corners[i-1].Response {
			t.Fatal("corners not sorted by response")
		}
	}
}

func TestCornersFlatImage(t *testing.T) {
	f := video.NewFrame(64, 64)
	f.Fill(128)
	if got := Corners(f, 50); len(got) != 0 {
		t.Fatalf("flat image produced %d corners", len(got))
	}
}

func TestCornersEdgeCases(t *testing.T) {
	if got := Corners(checkerFrame(96, 96, 16), 0); got != nil {
		t.Fatal("maxCorners=0 returned corners")
	}
	tiny := video.NewFrame(8, 8)
	if got := Corners(tiny, 10); got != nil {
		t.Fatal("frame smaller than patch produced corners")
	}
	got := Corners(checkerFrame(96, 96, 16), 5)
	if len(got) != 5 {
		t.Fatalf("maxCorners=5 returned %d", len(got))
	}
}

func TestDescriptorSimilarity(t *testing.T) {
	var a, b LocalDescriptor
	if got := a.Similarity(a); got != 1 {
		t.Fatalf("self similarity %v", got)
	}
	for i := range b {
		b[i] = 0xFF
	}
	if got := a.Similarity(b); got != 0 {
		t.Fatalf("opposite similarity %v", got)
	}
	b[0] = 0xFE // 255 differing bits
	if got := a.Similarity(b); got != 1-255.0/256 {
		t.Fatalf("near-opposite similarity %v", got)
	}
}

func TestExtractFeaturesDeterministic(t *testing.T) {
	f := checkerFrame(128, 96, 16)
	a := ExtractFeatures(f, 40)
	b := ExtractFeatures(f, 40)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("extraction not deterministic")
		}
	}
}

func TestMatchSimilarityBehaviour(t *testing.T) {
	res := video.Resolution{Name: "t", W: 160, H: 90}
	r := render.New(world.Default, render.DefaultCamera)
	fa, fb, fc := res.New(), res.New(), res.New()
	r.Render(render.Pose{AzimuthDeg: 0}, fa)
	r.Render(render.Pose{AzimuthDeg: 4}, fb)   // mostly the same scene
	r.Render(render.Pose{AzimuthDeg: 180}, fc) // opposite scene

	a := ExtractFeatures(fa, 60)
	b := ExtractFeatures(fb, 60)
	c := ExtractFeatures(fc, 60)
	if len(a) == 0 || len(b) == 0 || len(c) == 0 {
		t.Fatalf("feature counts %d/%d/%d", len(a), len(b), len(c))
	}
	self := MatchSimilarity(a, a)
	near := MatchSimilarity(a, b)
	far := MatchSimilarity(a, c)
	if self != 1 {
		t.Fatalf("self match %v", self)
	}
	if !(near > far) {
		t.Fatalf("similar view match %v not above opposite view %v", near, far)
	}
	// Empty-set conventions.
	if MatchSimilarity(nil, nil) != 1 || MatchSimilarity(nil, a) != 0 {
		t.Fatal("empty-set conventions broken")
	}
}
