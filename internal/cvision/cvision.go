// Package cvision implements the computer-vision baseline the paper
// compares FoV descriptors against: frame differencing as the similarity
// measure (Section VI-B, "we use frame differencing algorithm (as a
// representative of CV algorithms)"), plus two classic global content
// descriptors (intensity histogram and block-mean grid) used by the
// descriptor-size and extraction-cost comparisons, and a CV-based video
// segmenter mirroring Algorithm 1 on pixels for the Fig. 6(a) cost sweep.
package cvision

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"fovr/internal/video"
)

// MeanAbsDiff returns the mean absolute pixel difference between two
// frames of identical geometry, in [0, 255].
func MeanAbsDiff(a, b *video.Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("cvision: frame sizes differ: %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var sum uint64
	for i, pa := range a.Pix {
		d := int(pa) - int(b.Pix[i])
		if d < 0 {
			d = -d
		}
		sum += uint64(d)
	}
	return float64(sum) / float64(len(a.Pix)), nil
}

// DiffSimilarity is the frame-differencing similarity: 1 - MAD/255,
// in [0, 1], 1 for identical frames.
func DiffSimilarity(a, b *video.Frame) (float64, error) {
	mad, err := MeanAbsDiff(a, b)
	if err != nil {
		return 0, err
	}
	return 1 - mad/255, nil
}

// Matrix fills the n-by-n frame-differencing similarity matrix for a
// frame sequence, normalized so that the most dissimilar pair scores 0
// and identical frames score 1 — the "normalized similarity" of the
// paper's Fig. 4/5 green curves and right-hand rectangles.
func Matrix(frames []*video.Frame) ([][]float64, error) {
	n := len(frames)
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i], backing = backing[:n:n], backing[n:]
	}
	maxMAD := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mad, err := MeanAbsDiff(frames[i], frames[j])
			if err != nil {
				return nil, err
			}
			m[i][j] = mad
			m[j][i] = mad
			if mad > maxMAD {
				maxMAD = mad
			}
		}
	}
	for i := range m {
		m[i][i] = 1
		for j := range m[i] {
			if i != j {
				if maxMAD > 0 {
					m[i][j] = 1 - m[i][j]/maxMAD
				} else {
					m[i][j] = 1
				}
			}
		}
	}
	return m, nil
}

// NormalizedSeries converts a mean-absolute-difference series against a
// reference frame into the normalized similarity series plotted in
// Fig. 4: 1 at zero difference, 0 at the series maximum.
func NormalizedSeries(ref *video.Frame, frames []*video.Frame) ([]float64, error) {
	mads := make([]float64, len(frames))
	maxMAD := 0.0
	for i, f := range frames {
		mad, err := MeanAbsDiff(ref, f)
		if err != nil {
			return nil, err
		}
		mads[i] = mad
		if mad > maxMAD {
			maxMAD = mad
		}
	}
	out := make([]float64, len(frames))
	for i, mad := range mads {
		if maxMAD > 0 {
			out[i] = 1 - mad/maxMAD
		} else {
			out[i] = 1
		}
	}
	return out, nil
}

// Histogram is a 64-bin global intensity histogram descriptor,
// L1-normalized — the "global feature" class of content descriptor
// (Section VIII, Multimedia Descriptors).
type Histogram [64]float32

// ExtractHistogram computes the descriptor for a frame.
func ExtractHistogram(f *video.Frame) Histogram {
	var counts [64]int
	for _, p := range f.Pix {
		counts[p>>2]++
	}
	var h Histogram
	n := float32(len(f.Pix))
	for i, c := range counts {
		h[i] = float32(c) / n
	}
	return h
}

// Similarity returns 1 minus half the L1 distance between two
// L1-normalized histograms — the histogram-intersection similarity,
// in [0, 1].
func (h Histogram) Similarity(o Histogram) float64 {
	var l1 float64
	for i := range h {
		l1 += math.Abs(float64(h[i] - o[i]))
	}
	return 1 - l1/2
}

// SizeBytes returns the descriptor's wire size.
func (h Histogram) SizeBytes() int { return len(h) * 4 }

// BlockGrid is the block-mean layout used by BlockMean descriptors.
const BlockGrid = 8

// BlockMean is an 8x8 grid of block intensity means — a coarse spatial
// layout descriptor in the spirit of GIST/HLAC global features.
type BlockMean [BlockGrid * BlockGrid]uint8

// ExtractBlockMean computes the descriptor for a frame.
func ExtractBlockMean(f *video.Frame) BlockMean {
	var out BlockMean
	bw := f.W / BlockGrid
	bh := f.H / BlockGrid
	if bw == 0 || bh == 0 {
		return out
	}
	for by := 0; by < BlockGrid; by++ {
		for bx := 0; bx < BlockGrid; bx++ {
			var sum uint64
			for y := by * bh; y < (by+1)*bh; y++ {
				row := f.Pix[y*f.W : y*f.W+f.W]
				for x := bx * bw; x < (bx+1)*bw; x++ {
					sum += uint64(row[x])
				}
			}
			out[by*BlockGrid+bx] = uint8(sum / uint64(bw*bh))
		}
	}
	return out
}

// Similarity returns 1 - mean absolute block difference / 255, in [0, 1].
func (b BlockMean) Similarity(o BlockMean) float64 {
	var sum int
	for i := range b {
		d := int(b[i]) - int(o[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return 1 - float64(sum)/float64(len(b))/255
}

// SizeBytes returns the descriptor's wire size.
func (b BlockMean) SizeBytes() int { return len(b) }

// MatrixParallel is Matrix with the pair computations fanned out over
// workers goroutines (0 selects GOMAXPROCS). Frame differencing over an
// n-frame sequence is n(n-1)/2 independent full-frame scans — perfectly
// parallel work, and the dominant cost of regenerating Fig. 5.
func MatrixParallel(frames []*video.Frame, workers int) ([][]float64, error) {
	n := len(frames)
	if n == 0 {
		return nil, nil
	}
	for _, f := range frames[1:] {
		if f.W != frames[0].W || f.H != frames[0].H {
			return nil, fmt.Errorf("cvision: frame sizes differ")
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range m {
		m[i], backing = backing[:n:n], backing[n:]
	}
	// Static row partitioning: worker w takes rows i with i % workers == w.
	// Row i costs (n-i-1) pairs, so interleaving balances the triangle.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				for j := i + 1; j < n; j++ {
					mad, err := MeanAbsDiff(frames[i], frames[j])
					if err != nil {
						return // sizes pre-validated; unreachable
					}
					m[i][j] = mad
					m[j][i] = mad
				}
			}
		}(w)
	}
	wg.Wait()
	maxMAD := 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if m[i][j] > maxMAD {
				maxMAD = m[i][j]
			}
		}
	}
	for i := range m {
		m[i][i] = 1
		for j := range m[i] {
			if i != j {
				if maxMAD > 0 {
					m[i][j] = 1 - m[i][j]/maxMAD
				} else {
					m[i][j] = 1
				}
			}
		}
	}
	return m, nil
}
