package replay

import (
	"testing"
	"time"
)

func smallConfig() Config {
	return Config{
		Seed:           5,
		Providers:      40,
		CaptureSeconds: 30,
		SampleHz:       5,
		ExtentMeters:   800,
		HorizonMillis:  600_000,
		Queries:        100,
		QueryRadius:    20,
	}
}

func TestRunProducesCoherentMetrics(t *testing.T) {
	m, sys, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Providers != 40 {
		t.Fatalf("providers %d", m.Providers)
	}
	// 40 providers x 30 s x 5 Hz (+1 inclusive sample).
	if m.Frames != 40*151 {
		t.Fatalf("frames %d, want %d", m.Frames, 40*151)
	}
	if m.Segments <= 0 || m.Segments > m.Frames {
		t.Fatalf("segments %d implausible", m.Segments)
	}
	if sys.Len() != m.Segments {
		t.Fatalf("system holds %d segments, metrics say %d", sys.Len(), m.Segments)
	}
	// Descriptor traffic stays tiny: tens of bytes per segment.
	if perSeg := float64(m.UploadBytes) / float64(m.Segments); perSeg > 40 {
		t.Fatalf("upload %.1f bytes/segment", perSeg)
	}
	if m.RawVideoMB < 100 {
		t.Fatalf("raw video model %v MB implausibly small", m.RawVideoMB)
	}
	if m.Queries != 100 {
		t.Fatalf("queries %d", m.Queries)
	}
	// The abstract's claim with huge headroom: every percentile far
	// under 100 ms.
	if m.QueryP99 > 100*time.Millisecond {
		t.Fatalf("p99 query latency %v breaks the <100 ms claim", m.QueryP99)
	}
	if m.QueryP50 > m.QueryP99 || m.QueryP99 > m.QueryMax {
		t.Fatal("latency percentiles out of order")
	}
	// Queries target filmed spots with generous windows; a decent share
	// must return something.
	if m.ResultsTotal == 0 {
		t.Fatal("no query returned anything")
	}
	// Stage timings must be populated and bounded by total ingest time.
	for name, d := range map[string]time.Duration{
		"capture": m.CaptureTime,
		"segment": m.SegmentTime,
		"encode":  m.EncodeTime,
		"index":   m.IndexTime,
	} {
		if d <= 0 {
			t.Errorf("%s stage time = %v, want > 0", name, d)
		}
	}
	if sum := m.CaptureTime + m.SegmentTime + m.EncodeTime + m.IndexTime; sum > m.IngestTime {
		t.Errorf("stage times sum to %v, more than total ingest %v", sum, m.IngestTime)
	}
}

func TestRunDeterministicIngest(t *testing.T) {
	a, _, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Everything except wall-clock timings must match exactly.
	if a.Frames != b.Frames || a.Segments != b.Segments ||
		a.UploadBytes != b.UploadBytes || a.ResultsTotal != b.ResultsTotal {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestRunScalesSegmentsWithProviders(t *testing.T) {
	small := smallConfig()
	big := smallConfig()
	big.Providers = 80
	ms, _, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	mb, _, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if mb.Segments <= ms.Segments {
		t.Fatalf("doubling providers did not grow the corpus: %d vs %d", mb.Segments, ms.Segments)
	}
}
