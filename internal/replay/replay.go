// Package replay drives the complete system the way a deployment would
// experience it: a city of providers walking around recording, their
// sensor streams segmented in real time and the descriptors registered
// with the cloud, and a population of inquirers issuing ranked queries —
// with end-to-end metrics (descriptor traffic, index growth, query
// latency percentiles) collected along the way. It is the system-scale
// experiment behind the abstract's "scalable with data size" claim.
package replay

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"fovr/internal/core"
	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/obs"
	"fovr/internal/query"
	"fovr/internal/segment"
	"fovr/internal/trace"
	"fovr/internal/wire"
)

// Config sizes the simulated city.
type Config struct {
	// Seed makes the run reproducible.
	Seed int64
	// Providers is the number of contributors.
	Providers int
	// CaptureSeconds is each provider's recording length.
	CaptureSeconds float64
	// SampleHz is the sensor rate.
	SampleHz float64
	// ExtentMeters is the city half-width providers start within.
	ExtentMeters float64
	// HorizonMillis spreads capture start times.
	HorizonMillis int64
	// Queries is the number of retrieval requests issued after ingest.
	Queries int
	// QueryRadius is the inquirers' search radius in meters.
	QueryRadius float64
	// Noise is the sensor error model applied to every capture.
	Noise trace.Noise
}

// Stage timers for the replay phases, resolved once.
var (
	captureSpan = obs.NewSpanTimer("replay.capture")
	encodeSpan  = obs.NewSpanTimer("replay.encode")
)

// DefaultConfig is a mid-size city hour.
var DefaultConfig = Config{
	Seed:           1,
	Providers:      200,
	CaptureSeconds: 60,
	SampleHz:       10,
	ExtentMeters:   2000,
	HorizonMillis:  3_600_000,
	Queries:        300,
	QueryRadius:    20,
	Noise:          trace.DefaultNoise,
}

func (c Config) withDefaults() Config {
	d := DefaultConfig
	if c.Providers <= 0 {
		c.Providers = d.Providers
	}
	if c.CaptureSeconds <= 0 {
		c.CaptureSeconds = d.CaptureSeconds
	}
	if c.SampleHz <= 0 {
		c.SampleHz = d.SampleHz
	}
	if c.ExtentMeters <= 0 {
		c.ExtentMeters = d.ExtentMeters
	}
	if c.HorizonMillis <= 0 {
		c.HorizonMillis = d.HorizonMillis
	}
	if c.Queries <= 0 {
		c.Queries = d.Queries
	}
	if c.QueryRadius <= 0 {
		c.QueryRadius = d.QueryRadius
	}
	return c
}

// Metrics is what the run measured: volume counters, per-stage wall
// time for the capture → segment → upload-encode → index pipeline, and
// the query latency percentiles that map to the paper's Section VI
// response-time evaluation.
type Metrics struct {
	Providers    int
	Frames       int
	Segments     int
	UploadBytes  int64
	RawVideoMB   float64 // what a data-centric system would have moved
	IngestTime   time.Duration
	CaptureTime  time.Duration // generating + noising sensor traces
	SegmentTime  time.Duration // Algorithm 1 over every trace
	EncodeTime   time.Duration // wire-format descriptor encoding
	IndexTime    time.Duration // R-tree insertion
	Queries      int
	ResultsTotal int
	QueryP50     time.Duration
	QueryP95     time.Duration
	QueryP99     time.Duration
	QueryMax     time.Duration
}

// Run executes the simulation against a fresh System and returns the
// measured metrics.
func Run(cfg Config) (Metrics, *core.System, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sys, err := core.NewSystem(core.Config{
		Camera:       fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100},
		CircularMean: true,
	})
	if err != nil {
		return Metrics{}, nil, err
	}

	var m Metrics
	m.Providers = cfg.Providers

	// Ingest phase: every provider walks, segments, uploads. Each stage
	// is timed separately (and recorded as an obs span) so the report can
	// say where ingest wall time actually goes.
	samplePoints := make([]fov.Sample, 0, cfg.Providers) // one per provider, for query placement
	ingestStart := time.Now()
	for p := 0; p < cfg.Providers; p++ {
		capSp := captureSpan.Start()
		origin := geo.Offset(trace.ScenarioOrigin, rng.Float64()*360, rng.Float64()*cfg.ExtentMeters)
		start := int64(rng.Float64() * float64(cfg.HorizonMillis))
		clean, err := trace.RandomWalk(trace.Config{SampleHz: cfg.SampleHz, StartMillis: start},
			rng, origin, 1.4, 6, cfg.CaptureSeconds)
		if err != nil {
			return Metrics{}, nil, err
		}
		noisy := cfg.Noise.Apply(rng, clean)
		m.CaptureTime += capSp.End()
		m.Frames += len(noisy)
		samplePoints = append(samplePoints, noisy[rng.Intn(len(noisy))])

		// The client path: stream through the real-time segmenter.
		segmentStart := time.Now()
		results, err := segment.Split(sys.SegmentConfig(), noisy)
		if err != nil {
			return Metrics{}, nil, err
		}
		m.SegmentTime += time.Since(segmentStart)
		reps := segment.Representatives(results)
		encSp := encodeSpan.Start()
		data, err := wire.EncodeBinary(wire.Upload{Provider: fmt.Sprintf("p%04d", p), Reps: reps})
		if err != nil {
			return Metrics{}, nil, err
		}
		m.EncodeTime += encSp.End()
		m.UploadBytes += int64(len(data))
		indexStart := time.Now()
		ids, err := sys.Ingest(fmt.Sprintf("p%04d", p), reps)
		if err != nil {
			return Metrics{}, nil, err
		}
		m.IndexTime += time.Since(indexStart)
		m.Segments += len(ids)
	}
	m.IngestTime = time.Since(ingestStart)
	m.RawVideoMB = float64(cfg.Providers) * cfg.CaptureSeconds * 30 * 854 * 480 * 0.1 / 8 / 1e6

	// Query phase: inquirers probe spots providers actually filmed.
	lat := make([]time.Duration, 0, cfg.Queries)
	for i := 0; i < cfg.Queries; i++ {
		s := samplePoints[rng.Intn(len(samplePoints))]
		center := geo.Offset(s.P, s.Theta, 20+rng.Float64()*50)
		q := query.Query{
			StartMillis:  s.UnixMillis - 60_000,
			EndMillis:    s.UnixMillis + 60_000,
			Center:       center,
			RadiusMeters: cfg.QueryRadius,
		}
		begin := time.Now()
		hits, err := sys.Search(q, 10)
		if err != nil {
			return Metrics{}, nil, err
		}
		lat = append(lat, time.Since(begin))
		m.ResultsTotal += len(hits)
	}
	m.Queries = len(lat)
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(p float64) time.Duration {
		if len(lat) == 0 {
			return 0
		}
		i := int(p * float64(len(lat)-1))
		return lat[i]
	}
	m.QueryP50, m.QueryP95, m.QueryP99, m.QueryMax = pct(0.50), pct(0.95), pct(0.99), pct(1.0)
	return m, sys, nil
}
