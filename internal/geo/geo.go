// Package geo provides the small geodesy toolbox the FoV retrieval system
// is built on: the equirectangular Earth projection the paper specifies in
// Eq. (12), great-circle cross-checks, compass bearings, and local
// east-north displacement vectors.
//
// Conventions used throughout the repository:
//
//   - Latitude and longitude are in decimal degrees (WGS-ish, but the paper
//     models the Earth as a perfect sphere of radius 6378140 m, and so do
//     we).
//   - Azimuths and bearings are compass-style: 0° points north, angles grow
//     clockwise, and every function returns values normalized to [0, 360).
//   - Distances are in meters.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the spherical Earth radius used by the paper
// (Section VI-A, "Transformation of GPS Information").
const EarthRadiusMeters = 6378140.0

// MetersPerDegree is the length of one degree of a great circle on the
// paper's spherical Earth: 2*pi*r_e / 360.
const MetersPerDegree = 2 * math.Pi * EarthRadiusMeters / 360

// Point is a geographic position in degrees.
type Point struct {
	Lat float64 `json:"lat"`
	Lng float64 `json:"lng"`
}

// Valid reports whether the point lies in the usual geographic ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lng >= -180 && p.Lng <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lng)
}

func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lng)
}

// Vec is a local east-north displacement in meters.
type Vec struct {
	East  float64
	North float64
}

// Norm returns the Euclidean length of v in meters.
func (v Vec) Norm() float64 { return math.Hypot(v.East, v.North) }

// Bearing returns the compass direction of v in degrees [0, 360).
// The zero vector has bearing 0 by convention.
func (v Vec) Bearing() float64 {
	if v.East == 0 && v.North == 0 {
		return 0
	}
	// atan2 argument order gives the angle from north, clockwise.
	return NormalizeDeg(math.Atan2(v.East, v.North) * 180 / math.Pi)
}

// Displacement returns the local east-north vector from a to b using the
// paper's equirectangular approximation (Eq. 12): longitude differences are
// scaled by the cosine of the mid-latitude, latitude differences map
// directly to meridian arc length.
//
// The paper's Eq. (12) writes cos((Lng2-Lng1)/2); that is a typo for the
// mid-*latitude* (a longitude difference under a cosine has no geometric
// meaning and breaks the small-displacement limit). We use the standard
// equirectangular form, which matches the paper's intent and its numeric
// examples.
func Displacement(a, b Point) Vec {
	midLat := (a.Lat + b.Lat) / 2 * math.Pi / 180
	// Longitude differences wrap at the antimeridian: two points at
	// ±179.9° are ~22 km apart, not ~40,000 km.
	dLng := math.Mod(b.Lng-a.Lng, 360)
	if dLng > 180 {
		dLng -= 360
	} else if dLng < -180 {
		dLng += 360
	}
	return Vec{
		East:  MetersPerDegree * math.Cos(midLat) * dLng,
		North: MetersPerDegree * (b.Lat - a.Lat),
	}
}

// Distance returns the equirectangular distance in meters between a and b.
// This is the paper's delta_p (Eq. 2 / Eq. 12).
func Distance(a, b Point) float64 { return Displacement(a, b).Norm() }

// HaversineDistance returns the great-circle distance in meters between a
// and b on the spherical Earth. It is used in tests as an independent
// cross-check of Distance for the small displacements FoVs involve.
func HaversineDistance(a, b Point) float64 {
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := lat2 - lat1
	dLng := (b.Lng - a.Lng) * math.Pi / 180
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(s)))
}

// Bearing returns the compass bearing in degrees [0, 360) of b as seen from
// a, i.e. the paper's translation direction theta_p before it is made
// relative to the camera orientation.
func Bearing(a, b Point) float64 { return Displacement(a, b).Bearing() }

// Offset returns the point reached from p by moving the given distance in
// meters along the given compass bearing in degrees, under the same
// equirectangular approximation. It is the inverse of Displacement for
// small displacements and is the primitive the trace simulator moves with.
func Offset(p Point, bearingDeg, meters float64) Point {
	rad := bearingDeg * math.Pi / 180
	dNorth := meters * math.Cos(rad)
	dEast := meters * math.Sin(rad)
	lat := p.Lat + dNorth/MetersPerDegree
	midLat := (p.Lat + lat) / 2 * math.Pi / 180
	cos := math.Cos(midLat)
	lng := p.Lng
	if cos != 0 {
		lng += dEast / (MetersPerDegree * cos)
	}
	// Keep longitude in [-180, 180] across the antimeridian.
	if lng > 180 {
		lng -= 360
	} else if lng < -180 {
		lng += 360
	}
	return Point{Lat: lat, Lng: lng}
}

// NormalizeDeg maps any angle in degrees to [0, 360).
func NormalizeDeg(deg float64) float64 {
	d := math.Mod(deg, 360)
	if d < 0 {
		d += 360
	}
	// Mod can return 360 - epsilon rounding artifacts; also fold exact 360.
	if d >= 360 {
		d -= 360
	}
	return d
}

// AngleDiff returns the absolute circular difference between two compass
// angles in degrees, in [0, 180]. This is the paper's delta_theta (Eq. 2).
func AngleDiff(a, b float64) float64 {
	d := math.Abs(NormalizeDeg(a) - NormalizeDeg(b))
	if d > 180 {
		d = 360 - d
	}
	return d
}

// SignedAngleDiff returns the smallest signed rotation in degrees that
// carries compass angle a onto b, in (-180, 180].
func SignedAngleDiff(a, b float64) float64 {
	d := math.Mod(NormalizeDeg(b)-NormalizeDeg(a), 360)
	if d > 180 {
		d -= 360
	} else if d <= -180 {
		d += 360
	}
	return d
}

// Lerp linearly interpolates between two points.
func Lerp(a, b Point, t float64) Point {
	return Point{
		Lat: a.Lat + (b.Lat-a.Lat)*t,
		Lng: a.Lng + (b.Lng-a.Lng)*t,
	}
}

// Rect is an axis-aligned geographic bounding box.
type Rect struct {
	MinLat, MinLng float64
	MaxLat, MaxLng float64
}

// RectAround returns the bounding box of the circle of the given radius in
// meters centered at p, converted to longitude/latitude scales at p as the
// server does when building a query rectangle (Section V-B).
//
// Boxes (and the index built on them) are deliberately dateline-naive: a
// box whose circle straddles ±180° extends past the legal longitude
// range rather than splitting in two, so queries centered within ~R of
// the antimeridian can miss entries on the far side. Point-to-point
// Distance/Bearing/Offset are dateline-correct; only box semantics carry
// this documented limitation (as does the paper's own index).
func RectAround(p Point, radiusMeters float64) Rect {
	dLat := radiusMeters / MetersPerDegree
	cos := math.Cos(p.Lat * math.Pi / 180)
	dLng := dLat
	if cos > 1e-12 {
		dLng = radiusMeters / (MetersPerDegree * cos)
	}
	return Rect{
		MinLat: p.Lat - dLat, MaxLat: p.Lat + dLat,
		MinLng: p.Lng - dLng, MaxLng: p.Lng + dLng,
	}
}

// Contains reports whether p lies inside r (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat <= r.MaxLat &&
		p.Lng >= r.MinLng && p.Lng <= r.MaxLng
}

// Intersects reports whether two boxes overlap (inclusive).
func (r Rect) Intersects(o Rect) bool {
	return r.MinLat <= o.MaxLat && o.MinLat <= r.MaxLat &&
		r.MinLng <= o.MaxLng && o.MinLng <= r.MaxLng
}

// Center returns the box center.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lng: (r.MinLng + r.MaxLng) / 2}
}
