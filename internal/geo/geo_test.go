package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const beijing = 39.9997 // latitude used for most fixtures (Tsinghua campus)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{90.01, 0}, false},
		{Point{0, 180.01}, false},
		{Point{math.NaN(), 0}, false},
		{Point{0, math.NaN()}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestDistanceZero(t *testing.T) {
	p := Point{beijing, 116.3}
	if d := Distance(p, p); d != 0 {
		t.Fatalf("Distance(p,p) = %v, want 0", d)
	}
}

func TestDistanceMatchesHaversineSmallScale(t *testing.T) {
	// For displacements up to a few km the equirectangular distance must
	// agree with the great-circle distance to well under a meter.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a := Point{Lat: rng.Float64()*120 - 60, Lng: rng.Float64()*360 - 180}
		b := Offset(a, rng.Float64()*360, rng.Float64()*2000)
		de := Distance(a, b)
		dh := HaversineDistance(a, b)
		if math.Abs(de-dh) > 0.5 {
			t.Fatalf("equirect %v vs haversine %v differ too much for %v -> %v", de, dh, a, b)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(lat1, lng1, bearing, dist float64) bool {
		a := Point{Lat: math.Mod(lat1, 60), Lng: math.Mod(lng1, 180)}
		b := Offset(a, math.Mod(bearing, 360), math.Mod(math.Abs(dist), 5000))
		return almostEqual(Distance(a, b), Distance(b, a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	// Offset followed by Displacement must recover bearing and distance.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		p := Point{Lat: rng.Float64()*120 - 60, Lng: rng.Float64()*320 - 160}
		bearing := rng.Float64() * 360
		dist := 1 + rng.Float64()*1000
		q := Offset(p, bearing, dist)
		v := Displacement(p, q)
		if !almostEqual(v.Norm(), dist, dist*1e-3+0.01) {
			t.Fatalf("distance round-trip: got %v want %v (p=%v bearing=%v)", v.Norm(), dist, p, bearing)
		}
		if AngleDiff(v.Bearing(), bearing) > 0.1 {
			t.Fatalf("bearing round-trip: got %v want %v (p=%v dist=%v)", v.Bearing(), bearing, p, dist)
		}
	}
}

func TestBearingCardinal(t *testing.T) {
	p := Point{beijing, 116.3}
	cases := []struct {
		name    string
		bearing float64
	}{
		{"north", 0}, {"east", 90}, {"south", 180}, {"west", 270},
		{"northeast", 45}, {"southwest", 225},
	}
	for _, c := range cases {
		q := Offset(p, c.bearing, 500)
		if got := Bearing(p, q); AngleDiff(got, c.bearing) > 0.05 {
			t.Errorf("%s: Bearing = %v, want %v", c.name, got, c.bearing)
		}
	}
}

func TestVecBearingZero(t *testing.T) {
	if b := (Vec{}).Bearing(); b != 0 {
		t.Fatalf("zero vector bearing = %v, want 0", b)
	}
}

func TestNormalizeDeg(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {360, 0}, {-360, 0}, {720, 0},
		{361, 1}, {-1, 359}, {-181, 179}, {359.5, 359.5}, {540, 180},
	}
	for _, c := range cases {
		if got := NormalizeDeg(c.in); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalizeDeg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeDegRange(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		d := NormalizeDeg(x)
		return d >= 0 && d < 360
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, 180, 180},
		{10, 350, 20},
		{350, 10, 20},
		{90, 270, 180},
		{359, 1, 2},
		{45, 46, 1},
		{-10, 10, 20}, // negatives normalized first
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("AngleDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestAngleDiffProperties(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		d := AngleDiff(a, b)
		// Symmetric, bounded, identity.
		return d >= 0 && d <= 180 &&
			almostEqual(d, AngleDiff(b, a), 1e-6) &&
			almostEqual(AngleDiff(a, a), 0, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestSignedAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 10, 10},
		{10, 0, -10},
		{350, 10, 20},
		{10, 350, -20},
		{0, 180, 180},
		{180, 0, 180}, // boundary: +180 preferred over -180
	}
	for _, c := range cases {
		if got := SignedAngleDiff(c.a, c.b); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("SignedAngleDiff(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSignedAngleDiffConsistentWithAngleDiff(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		return almostEqual(math.Abs(SignedAngleDiff(a, b)), AngleDiff(a, b), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestRectAroundContainsCircle(t *testing.T) {
	p := Point{beijing, 116.3}
	r := RectAround(p, 100)
	// Sample the circle boundary; every point must be inside the rect.
	for deg := 0.0; deg < 360; deg += 5 {
		q := Offset(p, deg, 100)
		if !r.Contains(q) {
			t.Fatalf("rect %v does not contain circle point %v at bearing %v", r, q, deg)
		}
	}
	// And a point 1.5 radii east must be outside.
	if r.Contains(Offset(p, 90, 150)) {
		t.Fatal("rect contains point at 1.5r east; box too loose")
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{MinLat: 0, MinLng: 0, MaxLat: 1, MaxLng: 1}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{0.5, 0.5, 1.5, 1.5}, true},
		{Rect{1, 1, 2, 2}, true}, // touching corners count
		{Rect{1.01, 1.01, 2, 2}, false},
		{Rect{-1, -1, -0.01, -0.01}, false},
		{Rect{0.2, 0.2, 0.8, 0.8}, true}, // containment
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects is not symmetric for %v", c.b)
		}
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{MinLat: 10, MinLng: 20, MaxLat: 12, MaxLng: 26}
	c := r.Center()
	if c.Lat != 11 || c.Lng != 23 {
		t.Fatalf("Center = %v, want (11, 23)", c)
	}
}

func TestLerp(t *testing.T) {
	a := Point{0, 0}
	b := Point{10, 20}
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp t=0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp t=1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got.Lat != 5 || got.Lng != 10 {
		t.Errorf("Lerp t=0.5 = %v", got)
	}
}

func TestDisplacementAntisymmetric(t *testing.T) {
	f := func(latSeed, lngSeed, bearing, dist float64) bool {
		a := Point{Lat: math.Mod(latSeed, 60), Lng: math.Mod(lngSeed, 170)}
		b := Offset(a, math.Mod(bearing, 360), math.Mod(math.Abs(dist), 3000))
		v := Displacement(a, b)
		w := Displacement(b, a)
		return almostEqual(v.East, -w.East, 1e-6) && almostEqual(v.North, -w.North, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMetersPerDegreeValue(t *testing.T) {
	// 2*pi*6378140/360 ~= 111319.49 m
	if !almostEqual(MetersPerDegree, 111319.49, 0.1) {
		t.Fatalf("MetersPerDegree = %v", MetersPerDegree)
	}
}

func TestDatelineDisplacement(t *testing.T) {
	a := Point{Lat: 0, Lng: 179.999}
	b := Point{Lat: 0, Lng: -179.999}
	d := Distance(a, b)
	if d > 1000 {
		t.Fatalf("antimeridian neighbors %v m apart; wrap broken", d)
	}
	if bearing := Bearing(a, b); AngleDiff(bearing, 90) > 1 {
		t.Fatalf("eastward across the dateline has bearing %v, want ~90", bearing)
	}
	if bearing := Bearing(b, a); AngleDiff(bearing, 270) > 1 {
		t.Fatalf("westward across the dateline has bearing %v, want ~270", bearing)
	}
}

func TestOffsetWrapsLongitude(t *testing.T) {
	p := Point{Lat: 10, Lng: 179.9995}
	q := Offset(p, 90, 1000) // 1 km east crosses the line
	if !q.Valid() {
		t.Fatalf("offset across the dateline produced invalid point %v", q)
	}
	if q.Lng > 0 {
		t.Fatalf("longitude %v did not wrap negative", q.Lng)
	}
	// Round trip distance still correct.
	if d := Distance(p, q); math.Abs(d-1000) > 1 {
		t.Fatalf("distance across wrap = %v, want ~1000", d)
	}
	// Westward too.
	w := Offset(Point{Lat: -5, Lng: -179.9995}, 270, 1000)
	if !w.Valid() || w.Lng < 0 {
		t.Fatalf("westward wrap produced %v", w)
	}
}
