package render

import (
	"math"
	"testing"

	"fovr/internal/cvision"
	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/video"
	"fovr/internal/world"
)

var (
	testWorld = world.World{Seed: 42}
	emptyish  = world.World{Seed: 42, Density: 1e-12}
	res       = video.Resolution{Name: "test", W: 160, H: 90}
)

func TestDeterministicRender(t *testing.T) {
	r := New(testWorld, DefaultCamera)
	pose := Pose{East: 10, North: 20, AzimuthDeg: 45}
	a, b := res.New(), res.New()
	r.Render(pose, a)
	r.Render(pose, b)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same pose rendered differently")
		}
	}
}

func TestBackgroundGradient(t *testing.T) {
	r := New(emptyish, DefaultCamera)
	f := res.New()
	r.Render(Pose{}, f)
	// Sky brighter than the horizon region; ground darkest at horizon.
	if f.At(0, 0) <= f.At(0, f.H/2-1) {
		t.Error("sky gradient missing")
	}
	if f.At(0, f.H/2) >= f.At(0, f.H-1) {
		t.Error("ground gradient missing")
	}
	// Rows are uniform in an empty world.
	for x := 1; x < f.W; x++ {
		if f.At(x, 0) != f.At(0, 0) {
			t.Fatal("background row not uniform")
		}
	}
}

func TestLandmarksChangeThePicture(t *testing.T) {
	bare := res.New()
	New(emptyish, DefaultCamera).Render(Pose{}, bare)
	full := res.New()
	New(testWorld, DefaultCamera).Render(Pose{}, full)
	mad, err := cvision.MeanAbsDiff(bare, full)
	if err != nil {
		t.Fatal(err)
	}
	if mad < 1 {
		t.Fatalf("landmarks changed the frame by only %v; renderer drawing nothing?", mad)
	}
}

func TestRotationMovesPixelsMonotonically(t *testing.T) {
	// A slightly rotated camera should differ slightly; a strongly
	// rotated one strongly. Any single viewpoint has layout-specific
	// noise (a distant skyline can accidentally resemble itself across a
	// large turn), so the expectation is over several base azimuths —
	// exactly how the paper's Fig. 5(a) diagonal should be read.
	r := New(testWorld, DefaultCamera)
	bases := []float64{0, 45, 90, 135, 180, 225, 270, 315}
	// Keep all steps inside the informative regime: past ~2/3 of the
	// viewing angle the views share nothing and MAD is content noise.
	rots := []float64{2, 8, 30}
	mean := make([]float64, len(rots))
	for _, b := range bases {
		base := res.New()
		r.Render(Pose{East: 5, North: 5, AzimuthDeg: b}, base)
		for i, rot := range rots {
			f := res.New()
			r.Render(Pose{East: 5, North: 5, AzimuthDeg: b + rot}, f)
			mad, err := cvision.MeanAbsDiff(base, f)
			if err != nil {
				t.Fatal(err)
			}
			mean[i] += mad / float64(len(bases))
		}
	}
	for i := 1; i < len(rots); i++ {
		if mean[i] <= mean[i-1] {
			t.Fatalf("mean MAD not increasing with rotation: %v° -> %v, %v° -> %v",
				rots[i-1], mean[i-1], rots[i], mean[i])
		}
	}
}

func TestOppositeViewsShareOnlyBackground(t *testing.T) {
	r := New(testWorld, DefaultCamera)
	a, b := res.New(), res.New()
	r.Render(Pose{AzimuthDeg: 0}, a)
	r.Render(Pose{AzimuthDeg: 180}, b)
	sim, err := cvision.DiffSimilarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	same, err := cvision.DiffSimilarity(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if same != 1 {
		t.Fatalf("self similarity = %v", same)
	}
	if sim >= same {
		t.Fatal("opposite views as similar as identical views")
	}
}

func TestPoseFromGeo(t *testing.T) {
	origin := geo.Point{Lat: 40, Lng: 116.3}
	p := geo.Offset(origin, 90, 100) // 100 m east
	pose := PoseFromGeo(origin, p, 30)
	if math.Abs(pose.East-100) > 0.5 || math.Abs(pose.North) > 0.5 {
		t.Fatalf("pose = %+v, want ~(100, 0)", pose)
	}
	if pose.AzimuthDeg != 30 {
		t.Fatalf("azimuth = %v", pose.AzimuthDeg)
	}
}

func TestRenderSequence(t *testing.T) {
	r := New(testWorld, DefaultCamera)
	poses := []Pose{{}, {East: 1}, {East: 2}}
	frames := r.RenderSequence(poses, res)
	if len(frames) != 3 {
		t.Fatalf("got %d frames", len(frames))
	}
	for i, f := range frames {
		if f.W != res.W || f.H != res.H {
			t.Fatalf("frame %d has wrong geometry", i)
		}
	}
	// Consecutive frames differ (the camera moved).
	mad, _ := cvision.MeanAbsDiff(frames[0], frames[2])
	if mad == 0 {
		t.Fatal("camera motion produced identical frames")
	}
}

// TestFoVAndCVSimilarityCorrelate is the core sanity behind the paper's
// Figs. 4/5: across a rotation sweep, the content-free FoV similarity and
// the frame-differencing similarity must rank frame pairs the same way.
func TestFoVAndCVSimilarityCorrelate(t *testing.T) {
	// One world/viewpoint carries layout-specific noise, so the claim is
	// statistical: averaged over several worlds, the correlation between
	// the two measures across a rotation sweep must be strongly positive.
	cam := fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}
	origin := geo.Point{Lat: 40, Lng: 116.3}

	var sum float64
	seeds := []uint64{42, 7, 99, 1234}
	bases := []float64{0, 60, 120, 180, 240, 300}
	for _, seed := range seeds {
		r := New(world.World{Seed: seed}, DefaultCamera)
		// Sweep only the informative range (FoV similarity reaches 0 at
		// 60°); beyond it frame differencing is pure content noise. The
		// CV series is averaged over several base azimuths so scene-
		// content noise cancels and the pan signal remains — the same
		// ensemble view the paper's Fig. 5(a) diagonal gives.
		const steps = 16
		var fovSims []float64
		for k := 0; k <= steps; k++ {
			deg := 60 * float64(k) / steps
			fovSims = append(fovSims, fov.Sim(cam, fov.FoV{P: origin, Theta: 0}, fov.FoV{P: origin, Theta: deg}))
		}
		meanCV := make([]float64, steps+1)
		for _, base := range bases {
			var poses []Pose
			for k := 0; k <= steps; k++ {
				poses = append(poses, Pose{AzimuthDeg: base + 60*float64(k)/steps})
			}
			frames := r.RenderSequence(poses, res)
			cvSims, err := cvision.NormalizedSeries(frames[0], frames)
			if err != nil {
				t.Fatal(err)
			}
			for k, v := range cvSims {
				meanCV[k] += v / float64(len(bases))
			}
		}
		r1 := pearson(fovSims, meanCV)
		t.Logf("seed %d: r = %.3f", seed, r1)
		if r1 < 0.55 {
			t.Errorf("seed %d: correlation %.3f below 0.55", seed, r1)
		}
		sum += r1
	}
	// A saturating similarity curve against FoV's linear ramp has a
	// structural Pearson ceiling well below 1 even with zero noise; 0.65
	// asserts clearly-positive trend agreement without overfitting the
	// synthetic scene.
	if mean := sum / float64(len(seeds)); mean < 0.65 {
		t.Fatalf("mean FoV/CV correlation %.3f over %d worlds; want >= 0.65", mean, len(seeds))
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		cov += (a[i] - ma) * (b[i] - mb)
		va += (a[i] - ma) * (a[i] - ma)
		vb += (b[i] - mb) * (b[i] - mb)
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func TestRenderSequenceParallelMatchesSequential(t *testing.T) {
	var poses []Pose
	for i := 0; i < 23; i++ {
		poses = append(poses, Pose{East: float64(i), North: 5, AzimuthDeg: float64(i * 11)})
	}
	seq := New(testWorld, DefaultCamera).RenderSequence(poses, res)
	for _, workers := range []int{0, 1, 4, 64} {
		par := RenderSequenceParallel(testWorld, DefaultCamera, poses, res, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: length %d", workers, len(par))
		}
		for i := range seq {
			for px := range seq[i].Pix {
				if par[i].Pix[px] != seq[i].Pix[px] {
					t.Fatalf("workers=%d: frame %d differs at %d", workers, i, px)
				}
			}
		}
	}
	if got := RenderSequenceParallel(testWorld, DefaultCamera, nil, res, 4); len(got) != 0 {
		t.Fatal("empty input produced frames")
	}
}
