// Package render is a tiny pinhole-projection software renderer: it turns
// a camera pose in the procedural world of package world into a grayscale
// video frame.
//
// The paper's CV baseline (frame differencing) only measures how pixels
// move between frames, and pixels in street footage move because the
// camera rotates (pan), advances (looming) or strafes (parallax). The
// renderer reproduces exactly those three behaviours with a standard
// pinhole model — azimuth-relative bearings map to columns through
// tan(angle)/tan(hfov/2), apparent sizes fall off as 1/distance, and near
// landmarks occlude far ones — so frame-differencing similarity computed
// on rendered frames has the same structure as on real footage.
package render

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"fovr/internal/geo"
	"fovr/internal/video"
	"fovr/internal/world"
)

// Pose is a camera position and azimuth in world-local coordinates:
// meters east/north of the world origin, compass degrees.
type Pose struct {
	East, North float64
	AzimuthDeg  float64
}

// PoseFromGeo converts a geographic FoV position to a world-local pose
// anchored at origin.
func PoseFromGeo(origin, p geo.Point, azimuthDeg float64) Pose {
	v := geo.Displacement(origin, p)
	return Pose{East: v.East, North: v.North, AzimuthDeg: azimuthDeg}
}

// Camera is the renderer's optical model.
type Camera struct {
	// HFovDeg is the full horizontal field of view (2*alpha). Must be in
	// (0, 180).
	HFovDeg float64
	// ViewMeters is the far clip / radius of view R.
	ViewMeters float64
}

// DefaultCamera matches the fov.Camera used across the repository:
// 60° viewing angle, 100 m radius of view.
var DefaultCamera = Camera{HFovDeg: 60, ViewMeters: 100}

// Renderer renders frames of a fixed world and camera. It keeps scratch
// buffers, so rendering a frame sequence does not allocate per frame.
// A Renderer is not safe for concurrent use.
type Renderer struct {
	World  world.World
	Camera Camera

	sky     skyline
	scratch []world.Landmark
}

// New returns a renderer over the given world.
func New(w world.World, c Camera) *Renderer {
	return &Renderer{World: w, Camera: c, sky: newSkyline(w.Seed)}
}

// skyline is the mid-distance low-frequency backdrop: the band of
// building facades the camera sees behind the foreground landmarks. Real
// footage is dominated by such large smooth structures, which is what
// makes frame differencing decline *gradually* instead of saturating
// after one step; without this layer the thin foreground landmarks alone
// make the CV similarity a cliff.
//
// The band is anchored in *world* coordinates: each image column's view
// ray is followed to the fixed backdrop distance D, and the silhouette
// height and brightness are smooth 2-D harmonic fields sampled at that
// point. Rotating the camera slides the sample point along a circle
// (pan); translating the camera slides it 1:1 (scroll) — so both motion
// types change the backdrop smoothly, as they do on a real street.
type skyline struct {
	hSeed, bSeed uint64 // value-noise seeds for height and brightness
}

// skylineDist is the backdrop distance D in meters.
const skylineDist = 120

// skylineScale is the value-noise grid pitch in meters: the correlation
// length of the backdrop. One pitch of camera displacement (or of pan
// arc at skylineDist) fully refreshes the backdrop; 110 m makes the CV
// decay range comparable to the FoV overlap range (60° of pan ≈ 125 m of
// arc at the backdrop distance), as street footage shows.
const skylineScale = 110.0

func newSkyline(seed uint64) skyline {
	return skyline{
		hSeed: mix64(seed ^ 0xabcdef1234567890),
		bSeed: mix64(seed ^ 0x123456789abcdef0),
	}
}

func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// valueNoise is smooth aperiodic 2-D noise in [0, 1]: hash values on a
// skylineScale grid, bilinearly blended with a smoothstep. Unlike a
// harmonic field it never (quasi-)recurs, so the backdrop a camera left
// behind never accidentally comes back — the failure mode that made
// frame-differencing similarity bounce instead of plateau.
func valueNoise(seed uint64, x, y float64) float64 {
	gx := math.Floor(x / skylineScale)
	gy := math.Floor(y / skylineScale)
	fx := x/skylineScale - gx
	fy := y/skylineScale - gy
	// Smoothstep for C1-continuous blending.
	sx := fx * fx * (3 - 2*fx)
	sy := fy * fy * (3 - 2*fy)
	node := func(ix, iy float64) float64 {
		h := mix64(seed ^ mix64(uint64(int64(ix))) ^ mix64(uint64(int64(iy))*0x9e3779b97f4a7c15))
		return float64(h>>11) / float64(1<<53)
	}
	v00 := node(gx, gy)
	v10 := node(gx+1, gy)
	v01 := node(gx, gy+1)
	v11 := node(gx+1, gy+1)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// at returns the silhouette height fraction (0..1 of the half-frame) and
// brightness for the view ray from (east, north) toward azimuth azDeg.
func (s skyline) at(east, north, azDeg float64) (heightFrac float64, brightness uint8) {
	rad := azDeg * math.Pi / 180
	wE := east + skylineDist*math.Sin(rad)
	wN := north + skylineDist*math.Cos(rad)
	// Two octaves: coarse city blocks plus finer facade variation.
	hv := 0.7*valueNoise(s.hSeed, wE, wN) + 0.3*valueNoise(s.hSeed^0xff, wE*3, wN*3)
	bv := 0.7*valueNoise(s.bSeed, wE, wN) + 0.3*valueNoise(s.bSeed^0xff, wE*3, wN*3)
	heightFrac = 0.2 + 0.55*hv
	brightness = uint8(50 + 150*bv)
	return
}

// Render draws the view from pose into dst, overwriting its contents.
func (r *Renderer) Render(pose Pose, dst *video.Frame) {
	drawBackground(dst)
	r.drawSkyline(pose, dst)

	r.scratch = r.World.Near(pose.East, pose.North, r.Camera.ViewMeters, r.scratch[:0])
	lms := r.scratch

	// Painter's algorithm: far landmarks first so near ones occlude.
	sort.Slice(lms, func(i, j int) bool {
		di := sq(lms[i].East-pose.East) + sq(lms[i].North-pose.North)
		dj := sq(lms[j].East-pose.East) + sq(lms[j].North-pose.North)
		return di > dj
	})

	halfFov := r.Camera.HFovDeg / 2
	tanHalf := math.Tan(halfFov * math.Pi / 180)
	focal := float64(dst.W) / 2 / tanHalf // pixels
	horizon := dst.H / 2

	for _, lm := range lms {
		dE := lm.East - pose.East
		dN := lm.North - pose.North
		d := math.Hypot(dE, dN)
		if d < 20 {
			// Too close to the lens: real capture rarely has street
			// furniture filling the frame, and a screen-filling bar
			// would let a single landmark transit dominate the frame
			// difference.
			continue
		}
		bearing := math.Atan2(dE, dN) * 180 / math.Pi
		rel := geo.SignedAngleDiff(pose.AzimuthDeg, bearing)
		if math.Abs(rel) >= halfFov {
			continue
		}
		// Pinhole projection to a column.
		cx := float64(dst.W)/2 + focal*math.Tan(rel*math.Pi/180)
		pixH := focal * lm.Height / d
		pixW := focal * lm.Width / d
		if pixW < 1 {
			pixW = 1
		}
		// No single landmark may dominate the frame: cap its screen
		// footprint like real street furniture.
		if maxW := float64(dst.W) / 6; pixW > maxW {
			pixW = maxW
		}
		if maxH := 0.6 * float64(horizon); pixH > maxH {
			pixH = maxH
		}
		// Slight distance haze so depth changes show up in pixel values.
		atten := 1 - 0.5*d/r.Camera.ViewMeters
		b := uint8(float64(lm.Brightness) * atten)

		x0 := int(cx - pixW/2)
		x1 := int(cx + pixW/2)
		y1 := horizon
		y0 := horizon - int(pixH)
		drawRect(dst, x0, y0, x1, y1, b)
	}
}

// RenderSequence renders one frame per pose at the given resolution.
func (r *Renderer) RenderSequence(poses []Pose, res video.Resolution) []*video.Frame {
	frames := make([]*video.Frame, len(poses))
	for i, p := range poses {
		frames[i] = res.New()
		r.Render(p, frames[i])
	}
	return frames
}

// drawSkyline paints the distant backdrop column by column: each column's
// viewing direction maps through the pinhole model to a world azimuth,
// and the silhouette height/brightness are smooth functions of that
// azimuth, so rotating the camera pans the skyline smoothly.
func (r *Renderer) drawSkyline(pose Pose, dst *video.Frame) {
	halfFov := r.Camera.HFovDeg / 2
	tanHalf := math.Tan(halfFov * math.Pi / 180)
	focal := float64(dst.W) / 2 / tanHalf
	horizon := dst.H / 2
	for x := 0; x < dst.W; x++ {
		rel := math.Atan2(float64(x)+0.5-float64(dst.W)/2, focal) * 180 / math.Pi
		hf, b := r.sky.at(pose.East, pose.North, pose.AzimuthDeg+rel)
		top := horizon - int(hf*float64(horizon))
		if top < 0 {
			top = 0
		}
		for y := top; y < horizon; y++ {
			dst.Pix[y*dst.W+x] = b
		}
	}
}

func sq(x float64) float64 { return x * x }

// drawBackground paints a sky gradient above the horizon and a ground
// gradient below it.
func drawBackground(f *video.Frame) {
	horizon := f.H / 2
	for y := 0; y < f.H; y++ {
		var v uint8
		if y < horizon {
			// Sky: bright at the top, dimmer near the horizon.
			v = uint8(210 - 40*y/max(1, horizon))
		} else {
			// Ground: dark at the horizon, brighter toward the viewer.
			v = uint8(70 + 50*(y-horizon)/max(1, f.H-horizon))
		}
		row := f.Pix[y*f.W : (y+1)*f.W]
		for x := range row {
			row[x] = v
		}
	}
}

// drawRect fills a clipped rectangle.
func drawRect(f *video.Frame, x0, y0, x1, y1 int, v uint8) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 >= f.W {
		x1 = f.W - 1
	}
	if y1 >= f.H {
		y1 = f.H - 1
	}
	for y := y0; y <= y1; y++ {
		row := f.Pix[y*f.W : (y+1)*f.W]
		for x := x0; x <= x1; x++ {
			row[x] = v
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RenderSequenceParallel renders the poses with a worker pool (0 selects
// GOMAXPROCS). Each worker owns its own Renderer (the scratch buffers are
// not shareable), so rendering is embarrassingly parallel across frames.
func RenderSequenceParallel(w world.World, c Camera, poses []Pose, res video.Resolution, workers int) []*video.Frame {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(poses) {
		workers = len(poses)
	}
	frames := make([]*video.Frame, len(poses))
	if len(poses) == 0 {
		return frames
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			r := New(w, c)
			for i := wk; i < len(poses); i += workers {
				frames[i] = res.New()
				r.Render(poses[i], frames[i])
			}
		}(wk)
	}
	wg.Wait()
	return frames
}
