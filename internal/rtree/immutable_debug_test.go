//go:build fovrdebug

package rtree

import "testing"

// Under the fovrdebug tag, a write to a node that a published snapshot
// still owns must panic at the assertion site. The public API can never
// reach this state (copy-on-write clones first), so the test drives the
// assertion directly with a frozen node.
func TestAssertMutablePanicsOnFrozenNode(t *testing.T) {
	tr := MustNew[int](DefaultOptions)
	if err := tr.Insert(snapRect(1), 1); err != nil {
		t.Fatal(err)
	}
	s := tr.Publish() // freezes the current root
	defer func() {
		if recover() == nil {
			t.Fatal("assertMutable on a published node did not panic")
		}
	}()
	tr.assertMutable(s.root)
}
