package rtree

// Delete removes one stored item whose rectangle equals r and whose value
// satisfies match, and reports whether such an item was found. After the
// leaf entry is removed, underfull nodes along the path are dissolved and
// their surviving entries reinserted at their original level
// (CondenseTree), and the root is collapsed if it is left with a single
// child.
func (t *Tree[T]) Delete(r Rect, match func(T) bool) bool {
	path, idx := t.findLeaf(t.root, r, match, nil)
	if path == nil {
		return false
	}
	// findLeaf explored the tree read-only; clone the found path so the
	// nodes about to be mutated are writer-owned (copy-on-write).
	path = t.clonePath(path)
	leaf := path[len(path)-1]
	t.assertMutable(leaf)
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)
	t.size--
	t.stats.deletes.Add(1)
	t.condense(path)
	// Shrink the root while it is an internal node with one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	if t.size == 0 && !t.root.leaf {
		t.root = &node[T]{leaf: true, gen: t.writeGen}
		t.height = 1
	}
	return true
}

// clonePath replaces every shared node on a root-to-leaf path with a
// writer-owned clone, re-linking each clone into its (already cloned)
// parent and the root, and returns the cloned path.
func (t *Tree[T]) clonePath(path []*node[T]) []*node[T] {
	out := make([]*node[T], len(path))
	out[0] = t.mutable(path[0])
	t.root = out[0]
	for i := 1; i < len(path); i++ {
		c := t.mutable(path[i])
		parent := out[i-1]
		for j := range parent.entries {
			if parent.entries[j].child == path[i] {
				parent.entries[j].child = c
				break
			}
		}
		out[i] = c
	}
	return out
}

// DeleteRect removes one item with exactly the given rectangle, regardless
// of value.
func (t *Tree[T]) DeleteRect(r Rect) bool {
	return t.Delete(r, func(T) bool { return true })
}

// findLeaf locates a leaf entry matching (r, match) and returns the root
// path to its leaf plus the entry index, or (nil, 0) if absent.
func (t *Tree[T]) findLeaf(n *node[T], r Rect, match func(T) bool, path []*node[T]) ([]*node[T], int) {
	path = append(path, n)
	if n.leaf {
		for i, e := range n.entries {
			if e.rect == r && match(e.data) {
				return path, i
			}
		}
		return nil, 0
	}
	for _, e := range n.entries {
		if !e.rect.Contains(r) {
			continue
		}
		if p, i := t.findLeaf(e.child, r, match, path); p != nil {
			return p, i
		}
	}
	return nil, 0
}

// orphan is a subtree cut out during condensation, remembered with the
// level its entries lived at (1 = leaf entries).
type orphan[T any] struct {
	entries []entry[T]
	level   int
}

// condense walks the deletion path bottom-up, removing nodes that fell
// below minimum fill and collecting their entries for reinsertion, then
// reinserts every orphaned entry at its original level.
func (t *Tree[T]) condense(path []*node[T]) {
	var orphans []orphan[T]
	for i := len(path) - 1; i >= 1; i-- {
		n, parent := path[i], path[i-1]
		if len(n.entries) < t.opts.MinEntries {
			// Cut n out of its parent and orphan its entries.
			t.assertMutable(parent)
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			if len(n.entries) > 0 {
				// Entries of a node at depth i sit at level t.height-i.
				orphans = append(orphans, orphan[T]{entries: n.entries, level: t.height - i})
			}
		} else {
			t.tightenParent(path, i)
		}
	}
	// Reinsert orphans. Higher-level subtrees first so the tree height is
	// stable while they go back in; within a level the order is
	// arbitrary. Reinsertion can split nodes and grow the tree, which is
	// fine — levels are recomputed against the current height by
	// insertAtLevel's caller contract (level counted from the leaves).
	for _, o := range orphans {
		t.stats.reinserts.Add(int64(len(o.entries)))
		for _, e := range o.entries {
			t.insertAtLevel(e, o.level)
		}
	}
}
