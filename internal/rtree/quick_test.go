package rtree

import (
	"math"
	"testing"
	"testing/quick"
)

// boxSpec is a quick-generatable rectangle specification.
type boxSpec struct {
	X, Y, T    float64
	DX, DY, DT float64
}

func (b boxSpec) rect() (Rect, bool) {
	vals := []float64{b.X, b.Y, b.T, b.DX, b.DY, b.DT}
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Rect{}, false
		}
	}
	norm := func(v, span float64) float64 { return math.Mod(math.Abs(v), span) }
	r := Rect{
		Min: [Dims]float64{norm(b.X, 100), norm(b.Y, 100), norm(b.T, 1000)},
	}
	r.Max = [Dims]float64{
		r.Min[0] + norm(b.DX, 10),
		r.Min[1] + norm(b.DY, 10),
		r.Min[2] + norm(b.DT, 50),
	}
	return r, true
}

// TestQuickInsertedIsFindable: any inserted rectangle is returned by a
// search with its own extent, and the tree invariants hold afterwards.
func TestQuickInsertedIsFindable(t *testing.T) {
	tree := MustNew[int](Options{MaxEntries: 6})
	id := 0
	f := func(spec boxSpec) bool {
		r, ok := spec.rect()
		if !ok {
			return true
		}
		id++
		if err := tree.Insert(r, id); err != nil {
			return false
		}
		found := false
		want := id
		tree.Search(r, func(_ Rect, v int) bool {
			if v == want {
				found = true
				return false
			}
			return true
		})
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRectAlgebra: union commutes, contains its operands, and
// intersection tests are consistent with containment.
func TestQuickRectAlgebra(t *testing.T) {
	f := func(s1, s2 boxSpec) bool {
		a, ok1 := s1.rect()
		b, ok2 := s2.rect()
		if !ok1 || !ok2 {
			return true
		}
		u := a.Union(b)
		if u != b.Union(a) {
			return false
		}
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		if u.Area() < a.Area() || u.Area() < b.Area() {
			return false
		}
		// Containment implies intersection.
		if a.Contains(b) && !a.Intersects(b) {
			return false
		}
		// Intersection is symmetric.
		return a.Intersects(b) == b.Intersects(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMinDistLowerBound: MinDist from any point to a rect never
// exceeds the squared distance to any point sampled inside the rect
// (here: its center and corners).
func TestQuickMinDistLowerBound(t *testing.T) {
	f := func(s boxSpec, px, py, pt float64) bool {
		r, ok := s.rect()
		if !ok || math.IsNaN(px+py+pt) || math.IsInf(px+py+pt, 0) {
			return true
		}
		p := [Dims]float64{math.Mod(px, 200), math.Mod(py, 200), math.Mod(pt, 2000)}
		min := r.MinDist(p)
		check := func(q [Dims]float64) bool {
			d := 0.0
			for i := 0; i < Dims; i++ {
				d += (p[i] - q[i]) * (p[i] - q[i])
			}
			return min <= d+1e-9
		}
		if !check(r.Center()) || !check(r.Min) || !check(r.Max) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
