package rtree

import (
	"fmt"
	"math/rand"
	"testing"
)

func snapRect(i int) Rect {
	f := float64(i)
	return Rect{Min: [Dims]float64{f, f * 2, f * 3}, Max: [Dims]float64{f + 1, f*2 + 1, f*3 + 1}}
}

// A snapshot taken before a batch of mutations must keep answering from
// the old state, while the mutable tree and later snapshots see the new
// one — the core copy-on-write isolation guarantee.
func TestSnapshotIsolation(t *testing.T) {
	tr := MustNew[int](Options{MaxEntries: 4})
	for i := 0; i < 200; i++ {
		if err := tr.Insert(snapRect(i), i); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Publish()
	if got := before.Len(); got != 200 {
		t.Fatalf("snapshot Len = %d, want 200", got)
	}

	// Mutate heavily without publishing: deletes force condensation and
	// root shrinks, inserts force splits — all on cloned nodes.
	for i := 0; i < 150; i++ {
		if !tr.DeleteRect(snapRect(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	for i := 200; i < 400; i++ {
		if err := tr.Insert(snapRect(i), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("mid-batch invariants: %v", err)
	}

	// The old snapshot still answers from the pre-mutation state.
	everything := Rect{Min: [Dims]float64{-1e9, -1e9, -1e9}, Max: [Dims]float64{1e9, 1e9, 1e9}}
	seen := map[int]bool{}
	before.Search(everything, func(_ Rect, v int) bool {
		seen[v] = true
		return true
	})
	if len(seen) != 200 {
		t.Fatalf("old snapshot sees %d items, want 200", len(seen))
	}
	for i := 0; i < 200; i++ {
		if !seen[i] {
			t.Fatalf("old snapshot lost item %d", i)
		}
	}

	after := tr.Publish()
	if after.Epoch() != before.Epoch()+1 {
		t.Fatalf("epoch %d after publish, want %d", after.Epoch(), before.Epoch()+1)
	}
	if got, want := after.Len(), 250; got != want {
		t.Fatalf("new snapshot Len = %d, want %d", got, want)
	}
	if got := len(after.SearchAll(everything)); got != 250 {
		t.Fatalf("new snapshot search sees %d, want 250", got)
	}
	// And the old one is still frozen at 200.
	if got := len(before.SearchAll(everything)); got != 200 {
		t.Fatalf("old snapshot drifted to %d items", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("post-publish invariants: %v", err)
	}
	if err := before.CheckInvariants(); err != nil {
		t.Fatalf("retired snapshot invariants: %v", err)
	}
}

// Randomized churn with a publish after every operation: the snapshot
// must always match a linear model of the live contents, epochs must
// rise by exactly 1 per publish, and invariants must hold throughout.
func TestSnapshotChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, split := range []SplitAlgorithm{QuadraticSplit, LinearSplit, RStarSplit} {
		t.Run(split.String(), func(t *testing.T) {
			tr := MustNew[int](Options{MaxEntries: 5, Split: split})
			live := map[int]bool{}
			lastEpoch := tr.Snapshot().Epoch()
			for step := 0; step < 800; step++ {
				id := rng.Intn(120)
				if live[id] && rng.Intn(2) == 0 {
					if !tr.DeleteRect(snapRect(id)) {
						t.Fatalf("step %d: delete %d failed", step, id)
					}
					delete(live, id)
				} else if !live[id] {
					if err := tr.Insert(snapRect(id), id); err != nil {
						t.Fatal(err)
					}
					live[id] = true
				}
				s := tr.Publish()
				if s.Epoch() != lastEpoch+1 {
					t.Fatalf("step %d: epoch %d, want %d", step, s.Epoch(), lastEpoch+1)
				}
				lastEpoch = s.Epoch()
				if s.Len() != len(live) {
					t.Fatalf("step %d: snapshot Len %d, model %d", step, s.Len(), len(live))
				}
				if step%97 == 0 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// BulkLoad must publish the packed tree, not leave New's empty snapshot
// behind.
func TestSnapshotAfterBulkLoad(t *testing.T) {
	items := make([]Item[int], 500)
	for i := range items {
		items[i] = Item[int]{Rect: snapRect(i), Data: i}
	}
	tr, err := BulkLoad[int](Options{MaxEntries: 8}, items)
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Snapshot()
	if s == nil || s.Len() != 500 {
		t.Fatalf("bulk-loaded snapshot = %v", s)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Snapshot kNN agrees with the tree's.
	p := [Dims]float64{50, 100, 150}
	a := tr.Nearest(p, 5)
	b := s.NearestFunc(p, 5, nil)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("tree kNN %v != snapshot kNN %v", a, b)
	}
}

// Snapshot searches must feed the shared lifetime stats.
func TestSnapshotStatsShared(t *testing.T) {
	tr := MustNew[int](DefaultOptions)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(snapRect(i), i); err != nil {
			t.Fatal(err)
		}
	}
	s := tr.Publish()
	before := tr.Stats().Searches
	s.SearchAll(snapRect(3))
	s.NearestFunc([Dims]float64{0, 0, 0}, 3, nil)
	if got := tr.Stats().Searches; got != before+2 {
		t.Fatalf("Searches = %d, want %d", got, before+2)
	}
}
