package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// randRect produces a random box; degenerate=true yields the paper's
// vertical-segment shape (zero spatial extent, extended in time).
func randRect(rng *rand.Rand, degenerate bool) Rect {
	var r Rect
	x := rng.Float64() * 100
	y := rng.Float64() * 100
	t0 := rng.Float64() * 1000
	if degenerate {
		r.Min = [Dims]float64{x, y, t0}
		r.Max = [Dims]float64{x, y, t0 + rng.Float64()*50}
		return r
	}
	r.Min = [Dims]float64{x, y, t0}
	r.Max = [Dims]float64{x + rng.Float64()*10, y + rng.Float64()*10, t0 + rng.Float64()*50}
	return r
}

// brute is the reference implementation: a flat slice.
type brute struct {
	rects []Rect
	ids   []int
}

func (b *brute) insert(r Rect, id int) {
	b.rects = append(b.rects, r)
	b.ids = append(b.ids, id)
}

func (b *brute) search(q Rect) map[int]bool {
	out := map[int]bool{}
	for i, r := range b.rects {
		if r.Intersects(q) {
			out[b.ids[i]] = true
		}
	}
	return out
}

func (b *brute) delete(r Rect, id int) bool {
	for i := range b.rects {
		if b.rects[i] == r && b.ids[i] == id {
			b.rects = append(b.rects[:i], b.rects[i+1:]...)
			b.ids = append(b.ids[:i], b.ids[i+1:]...)
			return true
		}
	}
	return false
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		ok   bool
	}{
		{"defaults", Options{}, true},
		{"explicit", Options{MaxEntries: 8, MinEntries: 3}, true},
		{"max too small", Options{MaxEntries: 3}, false},
		{"min too large", Options{MaxEntries: 8, MinEntries: 5}, false},
		{"min too small", Options{MaxEntries: 8, MinEntries: 1}, false},
		{"bad split", Options{MaxEntries: 8, Split: SplitAlgorithm(9)}, false},
		{"linear", Options{MaxEntries: 8, Split: LinearSplit}, true},
		{"rstar", Options{MaxEntries: 8, Split: RStarSplit}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New[int](c.o)
			if (err == nil) != c.ok {
				t.Fatalf("New(%+v) err = %v, want ok=%v", c.o, err, c.ok)
			}
		})
	}
}

func TestSplitAlgorithmString(t *testing.T) {
	if QuadraticSplit.String() != "quadratic" || LinearSplit.String() != "linear" || RStarSplit.String() != "rstar" {
		t.Fatal("split algorithm names wrong")
	}
	if SplitAlgorithm(9).String() == "" {
		t.Fatal("unknown split algorithm has empty name")
	}
}

func TestRectValid(t *testing.T) {
	good := Rect{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{1, 1, 1}}
	if !good.Valid() {
		t.Fatal("valid rect rejected")
	}
	if !Point([Dims]float64{1, 2, 3}).Valid() {
		t.Fatal("point rect rejected")
	}
	bad := []Rect{
		{Min: [Dims]float64{1, 0, 0}, Max: [Dims]float64{0, 1, 1}},
		{Min: [Dims]float64{math.NaN(), 0, 0}, Max: [Dims]float64{1, 1, 1}},
		{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{math.Inf(1), 1, 1}},
	}
	for i, r := range bad {
		if r.Valid() {
			t.Errorf("case %d: invalid rect %v accepted", i, r)
		}
	}
}

func TestRectOps(t *testing.T) {
	a := Rect{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{2, 2, 2}}
	b := Rect{Min: [Dims]float64{1, 1, 1}, Max: [Dims]float64{3, 3, 3}}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects reported disjoint")
	}
	c := Rect{Min: [Dims]float64{5, 5, 5}, Max: [Dims]float64{6, 6, 6}}
	if a.Intersects(c) {
		t.Error("disjoint rects reported overlapping")
	}
	touch := Rect{Min: [Dims]float64{2, 0, 0}, Max: [Dims]float64{3, 2, 2}}
	if !a.Intersects(touch) {
		t.Error("boundary contact must count as intersection")
	}
	u := a.Union(b)
	want := Rect{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{3, 3, 3}}
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if got := a.Area(); got != 8 {
		t.Errorf("Area = %v, want 8", got)
	}
	if got := a.Margin(); got != 6 {
		t.Errorf("Margin = %v, want 6", got)
	}
	if !a.Contains(Rect{Min: [Dims]float64{0.5, 0.5, 0.5}, Max: [Dims]float64{1, 1, 1}}) {
		t.Error("contained rect reported outside")
	}
	if a.Contains(b) {
		t.Error("overlapping-but-not-contained rect reported contained")
	}
	if !a.ContainsPoint([Dims]float64{1, 1, 1}) || a.ContainsPoint([Dims]float64{3, 1, 1}) {
		t.Error("ContainsPoint wrong")
	}
	if got := a.Center(); got != [Dims]float64{1, 1, 1} {
		t.Errorf("Center = %v", got)
	}
}

func TestRectMinDist(t *testing.T) {
	r := Rect{Min: [Dims]float64{0, 0, 0}, Max: [Dims]float64{2, 2, 2}}
	if got := r.MinDist([Dims]float64{1, 1, 1}); got != 0 {
		t.Errorf("inside point MinDist = %v, want 0", got)
	}
	if got := r.MinDist([Dims]float64{5, 1, 1}); got != 9 {
		t.Errorf("MinDist = %v, want 9", got)
	}
	if got := r.MinDist([Dims]float64{3, 3, 1}); got != 2 {
		t.Errorf("corner MinDist = %v, want 2", got)
	}
	if got := r.MinDist([Dims]float64{-1, -1, -1}); got != 3 {
		t.Errorf("negative corner MinDist = %v, want 3", got)
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		name       string
		split      SplitAlgorithm
		degenerate bool
	}{
		{"quadratic boxes", QuadraticSplit, false},
		{"quadratic degenerate", QuadraticSplit, true},
		{"linear boxes", LinearSplit, false},
		{"linear degenerate", LinearSplit, true},
		{"rstar boxes", RStarSplit, false},
		{"rstar degenerate", RStarSplit, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			tree := MustNew[int](Options{MaxEntries: 8, Split: tc.split})
			ref := &brute{}
			for i := 0; i < 2000; i++ {
				r := randRect(rng, tc.degenerate)
				if err := tree.Insert(r, i); err != nil {
					t.Fatal(err)
				}
				ref.insert(r, i)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tree.Len() != 2000 {
				t.Fatalf("Len = %d", tree.Len())
			}
			for q := 0; q < 200; q++ {
				query := randRect(rng, false)
				want := ref.search(query)
				got := map[int]bool{}
				tree.Search(query, func(_ Rect, v int) bool {
					got[v] = true
					return true
				})
				if len(got) != len(want) {
					t.Fatalf("query %d: got %d hits, want %d", q, len(got), len(want))
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("query %d: missing id %d", q, id)
					}
				}
			}
		})
	}
}

func TestInsertInvalidRect(t *testing.T) {
	tree := MustNew[int](Options{})
	bad := Rect{Min: [Dims]float64{1, 0, 0}, Max: [Dims]float64{0, 0, 0}}
	if err := tree.Insert(bad, 1); err == nil {
		t.Fatal("invalid rect accepted")
	}
}

func TestHeightLogarithmic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tree := MustNew[int](Options{MaxEntries: 16})
	for i := 0; i < 20000; i++ {
		if err := tree.Insert(randRect(rng, true), i); err != nil {
			t.Fatal(err)
		}
	}
	// With m = 6, height is bounded by log_6(20000)+1 ~ 6.5.
	if h := tree.Height(); h > 7 {
		t.Fatalf("height %d too large for 20k items", h)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tree := MustNew[int](Options{MaxEntries: 8})
	ref := &brute{}
	rects := make([]Rect, 1200)
	for i := range rects {
		rects[i] = randRect(rng, true)
		if err := tree.Insert(rects[i], i); err != nil {
			t.Fatal(err)
		}
		ref.insert(rects[i], i)
	}
	// Delete in random order, checking invariants and parity as we go.
	perm := rng.Perm(len(rects))
	for step, idx := range perm {
		id := idx
		okTree := tree.Delete(rects[idx], func(v int) bool { return v == id })
		okRef := ref.delete(rects[idx], id)
		if okTree != okRef {
			t.Fatalf("step %d: delete parity broke: tree=%v ref=%v", step, okTree, okRef)
		}
		if !okTree {
			t.Fatalf("step %d: item %d not found", step, id)
		}
		if step%100 == 0 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			query := randRect(rng, false)
			want := ref.search(query)
			got := map[int]bool{}
			tree.Search(query, func(_ Rect, v int) bool { got[v] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("step %d: search mismatch %d vs %d", step, len(got), len(want))
			}
		}
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tree.Len())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The tree must be reusable after being emptied.
	if err := tree.Insert(rects[0], 1); err != nil {
		t.Fatal(err)
	}
	if got := tree.SearchAll(rects[0]); len(got) != 1 || got[0] != 1 {
		t.Fatalf("reuse after emptying: got %v", got)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tree := MustNew[int](Options{})
	r := Point([Dims]float64{1, 2, 3})
	if tree.DeleteRect(r) {
		t.Fatal("delete from empty tree succeeded")
	}
	if err := tree.Insert(r, 7); err != nil {
		t.Fatal(err)
	}
	if tree.Delete(r, func(v int) bool { return v == 8 }) {
		t.Fatal("delete with non-matching predicate succeeded")
	}
	other := Point([Dims]float64{9, 9, 9})
	if tree.DeleteRect(other) {
		t.Fatal("delete of absent rect succeeded")
	}
	if !tree.DeleteRect(r) {
		t.Fatal("delete of present rect failed")
	}
	if tree.Len() != 0 {
		t.Fatalf("Len = %d", tree.Len())
	}
}

func TestDuplicateRects(t *testing.T) {
	// Many items may share one rectangle (several videos shot from the
	// same spot); deletion must remove exactly one, selectable by value.
	tree := MustNew[int](Options{MaxEntries: 4})
	r := Point([Dims]float64{5, 5, 5})
	for i := 0; i < 50; i++ {
		if err := tree.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !tree.Delete(r, func(v int) bool { return v == 31 }) {
		t.Fatal("targeted delete failed")
	}
	if tree.Len() != 49 {
		t.Fatalf("Len = %d, want 49", tree.Len())
	}
	found := map[int]bool{}
	tree.Search(Point([Dims]float64{5, 5, 5}), func(_ Rect, v int) bool {
		found[v] = true
		return true
	})
	if found[31] {
		t.Fatal("deleted value still present")
	}
	if len(found) != 49 {
		t.Fatalf("found %d values, want 49", len(found))
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := MustNew[int](Options{})
	for i := 0; i < 500; i++ {
		_ = tree.Insert(randRect(rng, true), i)
	}
	all, _ := tree.Bounds()
	calls := 0
	tree.Search(all, func(Rect, int) bool {
		calls++
		return calls < 10
	})
	if calls != 10 {
		t.Fatalf("early stop ignored: %d calls", calls)
	}
}

func TestScan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tree := MustNew[int](Options{})
	want := map[int]bool{}
	for i := 0; i < 300; i++ {
		_ = tree.Insert(randRect(rng, false), i)
		want[i] = true
	}
	got := map[int]bool{}
	tree.Scan(func(_ Rect, v int) bool { got[v] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("Scan visited %d items, want %d", len(got), len(want))
	}
	calls := 0
	tree.Scan(func(Rect, int) bool { calls++; return false })
	if calls != 1 {
		t.Fatalf("Scan early stop ignored: %d calls", calls)
	}
}

func TestBoundsEmpty(t *testing.T) {
	tree := MustNew[int](Options{})
	if _, ok := tree.Bounds(); ok {
		t.Fatal("empty tree reports bounds")
	}
	r := Point([Dims]float64{1, 2, 3})
	_ = tree.Insert(r, 1)
	b, ok := tree.Bounds()
	if !ok || b != r {
		t.Fatalf("Bounds = %v, %v", b, ok)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tree := MustNew[int](Options{MaxEntries: 8})
	rects := make([]Rect, 1000)
	for i := range rects {
		rects[i] = randRect(rng, true)
		_ = tree.Insert(rects[i], i)
	}
	for trial := 0; trial < 50; trial++ {
		p := [Dims]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 1000}
		k := 1 + rng.Intn(20)
		got := tree.Nearest(p, k)
		if len(got) != k {
			t.Fatalf("Nearest returned %d, want %d", len(got), k)
		}
		// Brute-force distances.
		dists := make([]float64, len(rects))
		for i, r := range rects {
			dists[i] = r.MinDist(p)
		}
		sort.Float64s(dists)
		for i, nb := range got {
			if math.Abs(nb.Dist2-dists[i]) > 1e-9 {
				t.Fatalf("trial %d: neighbor %d dist2 %v, want %v", trial, i, nb.Dist2, dists[i])
			}
			if i > 0 && got[i-1].Dist2 > nb.Dist2 {
				t.Fatalf("trial %d: results not sorted", trial)
			}
		}
	}
}

func TestNearestEdgeCases(t *testing.T) {
	tree := MustNew[int](Options{})
	if got := tree.Nearest([Dims]float64{0, 0, 0}, 5); got != nil {
		t.Fatal("empty tree returned neighbors")
	}
	_ = tree.Insert(Point([Dims]float64{1, 1, 1}), 1)
	if got := tree.Nearest([Dims]float64{0, 0, 0}, 0); got != nil {
		t.Fatal("k=0 returned neighbors")
	}
	got := tree.Nearest([Dims]float64{0, 0, 0}, 10)
	if len(got) != 1 {
		t.Fatalf("k > size returned %d", len(got))
	}
}

func TestNearestFuncFilter(t *testing.T) {
	tree := MustNew[int](Options{})
	for i := 0; i < 100; i++ {
		_ = tree.Insert(Point([Dims]float64{float64(i), 0, 0}), i)
	}
	// Keep only even ids; the 3 nearest evens to x=0.1 are 0, 2, 4.
	got := tree.NearestFunc([Dims]float64{0.1, 0, 0}, 3, func(_ Rect, v int) bool {
		return v%2 == 0
	})
	if len(got) != 3 || got[0].Data != 0 || got[1].Data != 2 || got[2].Data != 4 {
		t.Fatalf("filtered nearest = %+v", got)
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100, 2000} {
		rng := rand.New(rand.NewSource(int64(n)))
		items := make([]Item[int], n)
		ref := &brute{}
		for i := 0; i < n; i++ {
			r := randRect(rng, true)
			items[i] = Item[int]{Rect: r, Data: i}
			ref.insert(r, i)
		}
		tree, err := BulkLoad(Options{MaxEntries: 16}, items)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Len() != n {
			t.Fatalf("n=%d: Len = %d", n, tree.Len())
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for q := 0; q < 50; q++ {
			query := randRect(rng, false)
			want := ref.search(query)
			got := map[int]bool{}
			tree.Search(query, func(_ Rect, v int) bool { got[v] = true; return true })
			if len(got) != len(want) {
				t.Fatalf("n=%d query %d: got %d, want %d", n, q, len(got), len(want))
			}
		}
	}
}

func TestBulkLoadInvalidRect(t *testing.T) {
	bad := Rect{Min: [Dims]float64{1, 0, 0}, Max: [Dims]float64{0, 0, 0}}
	if _, err := BulkLoad(Options{}, []Item[int]{{Rect: bad}}); err == nil {
		t.Fatal("invalid rect accepted by bulk load")
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items := make([]Item[int], 500)
	for i := range items {
		items[i] = Item[int]{Rect: randRect(rng, true), Data: i}
	}
	tree, err := BulkLoad(Options{MaxEntries: 8}, items)
	if err != nil {
		t.Fatal(err)
	}
	// Inserting and deleting after a bulk load must keep working.
	for i := 500; i < 700; i++ {
		if err := tree.Insert(randRect(rng, true), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		id := items[i].Data
		if !tree.Delete(items[i].Rect, func(v int) bool { return v == id }) {
			t.Fatalf("delete of bulk-loaded item %d failed", i)
		}
	}
	if tree.Len() != 500 {
		t.Fatalf("Len = %d, want 500", tree.Len())
	}
}

func TestBulkLoadTighterThanInsert(t *testing.T) {
	// STR packing should produce no more nodes than repeated insertion.
	rng := rand.New(rand.NewSource(13))
	items := make([]Item[int], 5000)
	ins := MustNew[int](Options{MaxEntries: 16})
	for i := range items {
		r := randRect(rng, true)
		items[i] = Item[int]{Rect: r, Data: i}
		_ = ins.Insert(r, i)
	}
	bulk, err := BulkLoad(Options{MaxEntries: 16}, items)
	if err != nil {
		t.Fatal(err)
	}
	if bulk.NodeCount() > ins.NodeCount() {
		t.Fatalf("bulk load used %d nodes, insertion used %d", bulk.NodeCount(), ins.NodeCount())
	}
	if bulk.Height() > ins.Height() {
		t.Fatalf("bulk height %d > insert height %d", bulk.Height(), ins.Height())
	}
}

func TestMixedOpsInvariants(t *testing.T) {
	// Randomized op sequence: invariants must hold throughout, under both
	// split algorithms.
	for _, split := range []SplitAlgorithm{QuadraticSplit, LinearSplit, RStarSplit} {
		rng := rand.New(rand.NewSource(77))
		tree := MustNew[int](Options{MaxEntries: 6, Split: split})
		ref := &brute{}
		nextID := 0
		for op := 0; op < 3000; op++ {
			if len(ref.rects) == 0 || rng.Float64() < 0.6 {
				r := randRect(rng, rng.Intn(2) == 0)
				if err := tree.Insert(r, nextID); err != nil {
					t.Fatal(err)
				}
				ref.insert(r, nextID)
				nextID++
			} else {
				i := rng.Intn(len(ref.rects))
				r, id := ref.rects[i], ref.ids[i]
				if !tree.Delete(r, func(v int) bool { return v == id }) {
					t.Fatalf("op %d (%v): delete of present item failed", op, split)
				}
				ref.delete(r, id)
			}
			if op%250 == 0 {
				if err := tree.CheckInvariants(); err != nil {
					t.Fatalf("op %d (%v): %v", op, split, err)
				}
			}
		}
		if tree.Len() != len(ref.rects) {
			t.Fatalf("%v: Len %d != ref %d", split, tree.Len(), len(ref.rects))
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWeightedNearest(t *testing.T) {
	tree := MustNew[int](Options{})
	// Points along x with varying t (dim 2).
	for i := 0; i < 100; i++ {
		_ = tree.Insert(Point([Dims]float64{float64(i), 0, float64(i * 1000)}), i)
	}
	// Unit weights on x/y, zero on t: nearest to x=10.2 are 10, 11, 9.
	got := tree.WeightedNearest([Dims]float64{10.2, 0, 999999}, [Dims]float64{1, 1, 0}, 3, 0, nil)
	if len(got) != 3 || got[0].Data != 10 || got[1].Data != 11 || got[2].Data != 9 {
		t.Fatalf("weighted nearest = %+v", got)
	}
	// A distance bound cuts the result set: within 1.0 of x=10.2 only
	// 10 and 11 qualify.
	got = tree.WeightedNearest([Dims]float64{10.2, 0, 0}, [Dims]float64{1, 1, 0}, 5, 1.0, nil)
	if len(got) != 2 {
		t.Fatalf("bounded nearest returned %d, want 2", len(got))
	}
	// Weighting x heavily makes y-displaced points relatively closer:
	// point 999 scores (1*2)^2 = 4, while x-neighbor 10 scores
	// (20*0.2)^2 = 16.
	_ = tree.Insert(Point([Dims]float64{10.2, 2, 0}), 999)
	got = tree.WeightedNearest([Dims]float64{10.2, 0, 0}, [Dims]float64{20, 1, 0}, 1, 0, nil)
	if len(got) != 1 || got[0].Data != 999 {
		t.Fatalf("anisotropic nearest = %+v, want the y-offset point", got)
	}
	// Filter + bound compose.
	got = tree.WeightedNearest([Dims]float64{10.2, 0, 0}, [Dims]float64{1, 1, 0}, 5, 4.0,
		func(_ Rect, v int) bool { return v%2 == 0 })
	for _, n := range got {
		if n.Data != 999 && n.Data%2 != 0 {
			t.Fatalf("filter leaked %d", n.Data)
		}
	}
	// Empty tree / k=0.
	empty := MustNew[int](Options{})
	if empty.WeightedNearest([Dims]float64{}, [Dims]float64{1, 1, 1}, 3, 0, nil) != nil {
		t.Fatal("empty tree returned neighbors")
	}
	if tree.WeightedNearest([Dims]float64{}, [Dims]float64{1, 1, 1}, 0, 0, nil) != nil {
		t.Fatal("k=0 returned neighbors")
	}
}
