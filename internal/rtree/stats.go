package rtree

import "sync/atomic"

// Stats is a snapshot of the tree's lifetime operation counters — the
// raw material for the paper's Section V index-cost evaluation. All
// counters are monotonic for the life of the tree; replacing the tree
// (snapshot restore, bulk rebuild) resets them, which scrapers treat as
// a counter reset.
type Stats struct {
	// Searches counts Search/SearchAll/Nearest calls.
	Searches int64
	// NodeVisits counts internal and leaf nodes whose entries were
	// examined during searches (range and nearest-neighbour).
	NodeVisits int64
	// LeafEntriesScanned counts leaf entries tested against a query —
	// the per-query work the R-tree exists to minimise versus a linear
	// scan.
	LeafEntriesScanned int64
	// Inserts and Deletes count successful item mutations.
	Inserts int64
	Deletes int64
	// Reinserts counts entries re-routed during CondenseTree after a
	// deletion left a node underfull.
	Reinserts int64
	// Splits counts node splits caused by overflow.
	Splits int64
}

// stats is the tree-internal atomic edition. Searches run under the
// caller's read lock and may be concurrent, so all fields are atomics.
type stats struct {
	searches   atomic.Int64
	nodeVisits atomic.Int64
	leafScans  atomic.Int64
	inserts    atomic.Int64
	deletes    atomic.Int64
	reinserts  atomic.Int64
	splits     atomic.Int64
}

// Stats returns a snapshot of the tree's operation counters.
func (t *Tree[T]) Stats() Stats {
	return Stats{
		Searches:           t.stats.searches.Load(),
		NodeVisits:         t.stats.nodeVisits.Load(),
		LeafEntriesScanned: t.stats.leafScans.Load(),
		Inserts:            t.stats.inserts.Load(),
		Deletes:            t.stats.deletes.Load(),
		Reinserts:          t.stats.reinserts.Load(),
		Splits:             t.stats.splits.Load(),
	}
}

// searchCounters accumulates per-call counts on the stack so a traversal
// costs two atomic adds total instead of one per node.
type searchCounters struct {
	nodes int64
	leafs int64
}

// recordSearch folds one traversal's counters into the lifetime totals.
// It is a method on the atomic stats block (not the Tree) so snapshots,
// which share the owning tree's stats, can record through the same path.
func (s *stats) recordSearch(c searchCounters) {
	s.searches.Add(1)
	s.nodeVisits.Add(c.nodes)
	s.leafScans.Add(c.leafs)
}
