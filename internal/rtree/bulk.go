package rtree

import (
	"fmt"
	"math"
	"sort"
)

// Item is a rectangle/value pair for bulk loading.
type Item[T any] struct {
	Rect Rect
	Data T
}

// BulkLoad builds a tree from items using the Sort-Tile-Recursive (STR)
// packing algorithm: items are sorted by the first dimension of their
// centers, cut into vertical slabs, each slab sorted by the next
// dimension, and so on, so that every leaf holds up to MaxEntries
// spatially adjacent items. STR produces near-100% node fill and tighter
// MBRs than repeated insertion, at the cost of being offline-only; the
// ablation benchmarks quantify the query-time difference.
func BulkLoad[T any](opts Options, items []Item[T]) (*Tree[T], error) {
	t, err := New[T](opts)
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		if !it.Rect.Valid() {
			return nil, fmt.Errorf("rtree: invalid rect %v in bulk load", it.Rect)
		}
	}
	if len(items) == 0 {
		return t, nil
	}

	entries := make([]entry[T], len(items))
	for i, it := range items {
		entries[i] = entry[T]{rect: it.Rect, data: it.Data}
	}
	nodes := packLevel(entries, t.opts.MaxEntries, true)
	height := 1
	for len(nodes) > 1 {
		parents := make([]entry[T], len(nodes))
		for i, n := range nodes {
			parents[i] = entry[T]{rect: n.mbr(), child: n}
		}
		nodes = packLevel(parents, t.opts.MaxEntries, false)
		height++
	}
	t.root = nodes[0]
	t.height = height
	t.size = len(items)
	t.packed = true
	t.Publish() // replace New's empty snapshot with the packed tree
	return t, nil
}

// packLevel tiles one level's entries into nodes of capacity max using
// STR's recursive slab sort over the Dims center coordinates.
func packLevel[T any](entries []entry[T], max int, leaf bool) []*node[T] {
	strSort(entries, max, 0)
	nNodes := (len(entries) + max - 1) / max
	nodes := make([]*node[T], 0, nNodes)
	for start := 0; start < len(entries); start += max {
		end := start + max
		if end > len(entries) {
			end = len(entries)
		}
		n := &node[T]{leaf: leaf, entries: make([]entry[T], end-start)}
		copy(n.entries, entries[start:end])
		nodes = append(nodes, n)
	}
	return nodes
}

// strSort recursively orders entries so that consecutive runs of max
// entries are spatially coherent: sort by dimension d, cut into slabs
// sized for the remaining dimensions, recurse into each slab with d+1.
func strSort[T any](entries []entry[T], max, d int) {
	if d >= Dims-1 {
		sortByCenter(entries, d)
		return
	}
	sortByCenter(entries, d)
	nLeaves := float64(len(entries)) / float64(max)
	// Number of slabs along this dimension: ceil(nLeaves^(1/k)) where k is
	// the number of remaining dimensions.
	k := Dims - d
	slabs := int(math.Ceil(math.Pow(nLeaves, 1/float64(k))))
	if slabs < 1 {
		slabs = 1
	}
	slabSize := (len(entries) + slabs - 1) / slabs
	// Round the slab size up to a multiple of max so leaves don't straddle
	// slab boundaries.
	if rem := slabSize % max; rem != 0 {
		slabSize += max - rem
	}
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		strSort(entries[start:end], max, d+1)
	}
}

func sortByCenter[T any](entries []entry[T], d int) {
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].rect.Min[d]+entries[i].rect.Max[d] <
			entries[j].rect.Min[d]+entries[j].rect.Max[d]
	})
}
