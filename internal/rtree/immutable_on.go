//go:build fovrdebug

package rtree

// immutableChecks is on under the fovrdebug build tag: any write to a
// node owned by a published snapshot panics at the mutation site instead
// of silently corrupting concurrent readers.
const immutableChecks = true
