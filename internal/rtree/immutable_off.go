//go:build !fovrdebug

package rtree

// immutableChecks gates the debug assertion that a writer never mutates a
// node reachable from a published snapshot. Off in normal builds, the
// assertions are constant-false branches the compiler removes; build with
// -tags fovrdebug to turn writes to frozen nodes into panics.
const immutableChecks = false
