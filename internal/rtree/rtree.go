package rtree

import (
	"fmt"
	"sync/atomic"
)

// SplitAlgorithm selects the node-split heuristic used on overflow.
type SplitAlgorithm int

const (
	// QuadraticSplit is Guttman's quadratic-cost split (the default and
	// the classic choice for mixed workloads).
	QuadraticSplit SplitAlgorithm = iota
	// LinearSplit is Guttman's linear-cost split: cheaper to run,
	// usually looser groupings.
	LinearSplit
	// RStarSplit is the R*-tree topological split (Beckmann et al. 1990,
	// split phase only): margin-minimal axis choice, overlap-minimal
	// distribution. Costs more per split, usually yields better trees.
	RStarSplit
)

func (s SplitAlgorithm) String() string {
	switch s {
	case QuadraticSplit:
		return "quadratic"
	case LinearSplit:
		return "linear"
	case RStarSplit:
		return "rstar"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// Options tune the tree shape.
type Options struct {
	// MaxEntries is M, the node capacity. Must be >= 4.
	MaxEntries int
	// MinEntries is m, the minimum fill; 2 <= m <= M/2. Zero selects
	// the standard 40% fill.
	MinEntries int
	// Split selects the overflow heuristic.
	Split SplitAlgorithm
}

// DefaultOptions matches common R-tree deployments: M = 16, m = 6.
var DefaultOptions = Options{MaxEntries: 16}

func (o Options) withDefaults() (Options, error) {
	if o.MaxEntries == 0 {
		o.MaxEntries = DefaultOptions.MaxEntries
	}
	if o.MaxEntries < 4 {
		return o, fmt.Errorf("rtree: MaxEntries %d < 4", o.MaxEntries)
	}
	if o.MinEntries == 0 {
		o.MinEntries = o.MaxEntries * 2 / 5
		if o.MinEntries < 2 {
			o.MinEntries = 2
		}
	}
	if o.MinEntries < 2 || o.MinEntries > o.MaxEntries/2 {
		return o, fmt.Errorf("rtree: MinEntries %d out of [2, MaxEntries/2=%d]",
			o.MinEntries, o.MaxEntries/2)
	}
	switch o.Split {
	case QuadraticSplit, LinearSplit, RStarSplit:
	default:
		return o, fmt.Errorf("rtree: unknown split algorithm %d", o.Split)
	}
	return o, nil
}

// entry is one slot of a node: a bounding rectangle plus either a child
// pointer (internal nodes) or a data item (leaves).
type entry[T any] struct {
	rect  Rect
	child *node[T]
	data  T
}

// node is a tree node. All leaves are at the same depth.
//
// gen is the write generation the node belongs to. A node whose gen
// equals the tree's current writeGen is exclusively owned by the writer
// and may be mutated in place; any other node may be shared with a
// published Snapshot and must be cloned before mutation (copy-on-write).
type node[T any] struct {
	leaf    bool
	gen     uint64
	entries []entry[T]
}

func (n *node[T]) mbr() Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// Tree is an R-tree mapping rectangles to values of type T.
// The zero value is not usable; construct with New.
type Tree[T any] struct {
	opts   Options
	root   *node[T]
	height int // number of levels; 1 = root is a leaf
	size   int
	packed bool // built by BulkLoad: tail nodes may be under-filled
	stats  stats

	// writeGen is the current write generation: nodes stamped with it are
	// writer-owned, everything older is frozen (possibly shared with a
	// published Snapshot). Publish bumps it, freezing the whole tree.
	writeGen uint64
	// snap is the most recently published read-only snapshot. Readers load
	// it without any coordination with the writer; mutators require the
	// caller's usual external serialization.
	snap atomic.Pointer[Snapshot[T]]
}

// New returns an empty tree, or an error for invalid options.
func New[T any](opts Options) (*Tree[T], error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	t := &Tree[T]{
		opts:   o,
		root:   &node[T]{leaf: true},
		height: 1,
	}
	t.Publish() // a tree always has a (possibly empty) snapshot
	return t, nil
}

// MustNew is New for known-good options (used by package-internal callers
// and tests).
func MustNew[T any](opts Options) *Tree[T] {
	t, err := New[T](opts)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored items.
func (t *Tree[T]) Len() int { return t.size }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree[T]) Height() int { return t.height }

// Options returns the tree's effective options.
func (t *Tree[T]) Options() Options { return t.opts }

// Insert adds an item with the given bounding rectangle.
func (t *Tree[T]) Insert(r Rect, data T) error {
	if !r.Valid() {
		return fmt.Errorf("rtree: invalid rect %v", r)
	}
	t.insertAtLevel(entry[T]{rect: r, data: data}, 1)
	t.size++
	t.stats.inserts.Add(1)
	return nil
}

// insertAtLevel inserts an entry at the given level counted from the
// leaves (level 1 = leaf level). Subtree reinsertion during deletion uses
// levels > 1.
func (t *Tree[T]) insertAtLevel(e entry[T], level int) {
	leafPath := t.choosePath(e.rect, level)
	n := leafPath[len(leafPath)-1]
	t.assertMutable(n)
	n.entries = append(n.entries, e)
	t.adjustPath(leafPath)
}

// choosePath descends from the root to the node at the target level,
// choosing at each step the child whose rectangle needs least enlargement
// (ChooseLeaf / ChooseSubtree), and returns the visited nodes. Every node
// on the returned path is writer-owned: shared (published) nodes are
// cloned during the descent and re-linked into their parents, so the
// caller may mutate path nodes freely.
func (t *Tree[T]) choosePath(r Rect, level int) []*node[T] {
	path := make([]*node[T], 0, t.height)
	n := t.mutable(t.root)
	t.root = n
	depth := t.height // level of n, counted from leaves
	path = append(path, n)
	for depth > level {
		best := 0
		var bestArea, bestMargin, bestSize float64
		for i, e := range n.entries {
			dArea, dMargin := e.rect.Enlargement(r)
			size := e.rect.Area()
			if i == 0 || less3(dArea, dMargin, size, bestArea, bestMargin, bestSize) {
				best, bestArea, bestMargin, bestSize = i, dArea, dMargin, size
			}
		}
		child := t.mutable(n.entries[best].child)
		n.entries[best].child = child
		n = child
		path = append(path, n)
		depth--
	}
	return path
}

// less3 orders subtree candidates by (area enlargement, margin
// enlargement, current area) lexicographically — the margin term breaks
// ties between degenerate boxes whose area enlargement is always zero.
func less3(a1, a2, a3, b1, b2, b3 float64) bool {
	if a1 != b1 {
		return a1 < b1
	}
	if a2 != b2 {
		return a2 < b2
	}
	return a3 < b3
}

// adjustPath walks back up the insertion path, splitting overflowing
// nodes and keeping parent rectangles tight (AdjustTree).
func (t *Tree[T]) adjustPath(path []*node[T]) {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		if len(n.entries) <= t.opts.MaxEntries {
			t.tightenParent(path, i)
			continue
		}
		left, right := t.splitNode(n)
		if i == 0 {
			// Root split: the tree grows a level.
			t.root = &node[T]{
				leaf: false,
				gen:  t.writeGen,
				entries: []entry[T]{
					{rect: left.mbr(), child: left},
					{rect: right.mbr(), child: right},
				},
			}
			t.height++
			return
		}
		parent := path[i-1]
		t.assertMutable(parent)
		// Replace n's slot with left, append right.
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j] = entry[T]{rect: left.mbr(), child: left}
				break
			}
		}
		parent.entries = append(parent.entries, entry[T]{rect: right.mbr(), child: right})
	}
}

// tightenParent refreshes the parent entry rectangle for path[i].
func (t *Tree[T]) tightenParent(path []*node[T], i int) {
	if i == 0 {
		return
	}
	n, parent := path[i], path[i-1]
	t.assertMutable(parent)
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j].rect = n.mbr()
			return
		}
	}
}

// splitNode distributes an overflowing node's entries into two new nodes
// using the configured heuristic. The receiver node is reused as the left
// half.
func (t *Tree[T]) splitNode(n *node[T]) (left, right *node[T]) {
	t.assertMutable(n)
	t.stats.splits.Add(1)
	entries := n.entries
	if t.opts.Split == RStarSplit {
		l, r := rstarSplit(entries, t.opts.MinEntries)
		left = n
		left.entries = append(left.entries[:0], l...)
		right = &node[T]{leaf: n.leaf, gen: t.writeGen, entries: append([]entry[T](nil), r...)}
		return left, right
	}
	var seedA, seedB int
	if t.opts.Split == LinearSplit {
		seedA, seedB = linearPickSeeds(entries)
	} else {
		seedA, seedB = quadraticPickSeeds(entries)
	}

	left = n
	right = &node[T]{leaf: n.leaf, gen: t.writeGen}
	la := entries[seedA]
	lb := entries[seedB]
	rest := make([]entry[T], 0, len(entries)-2)
	for i, e := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, e)
		}
	}
	left.entries = append(left.entries[:0], la)
	right.entries = append(right.entries, lb)
	rectL, rectR := la.rect, lb.rect

	for len(rest) > 0 {
		// If one group must take everything left to reach minimum fill,
		// assign the remainder wholesale.
		need := t.opts.MinEntries
		if len(left.entries)+len(rest) <= need {
			for _, e := range rest {
				left.entries = append(left.entries, e)
			}
			break
		}
		if len(right.entries)+len(rest) <= need {
			right.entries = append(right.entries, rest...)
			break
		}
		var pick int
		if t.opts.Split == QuadraticSplit {
			pick = quadraticPickNext(rest, rectL, rectR)
		} // linear split takes entries in arbitrary order: pick stays 0
		e := rest[pick]
		rest[pick] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]

		dAL, dML := rectL.Enlargement(e.rect)
		dAR, dMR := rectR.Enlargement(e.rect)
		toLeft := less3(dAL, dML, rectL.Area(), dAR, dMR, rectR.Area())
		if dAL == dAR && dML == dMR && rectL.Area() == rectR.Area() {
			toLeft = len(left.entries) <= len(right.entries)
		}
		if toLeft {
			left.entries = append(left.entries, e)
			rectL = rectL.Union(e.rect)
		} else {
			right.entries = append(right.entries, e)
			rectR = rectR.Union(e.rect)
		}
	}
	return left, right
}

// quadraticPickSeeds returns the pair of entries that would waste the most
// area if grouped together (PickSeeds, quadratic variant), with margin as
// the degenerate-box tie-breaker.
func quadraticPickSeeds[T any](entries []entry[T]) (int, int) {
	bestA, bestB := 0, 1
	worstArea := -1.0
	worstMargin := -1.0
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			u := entries[i].rect.Union(entries[j].rect)
			dead := u.Area() - entries[i].rect.Area() - entries[j].rect.Area()
			margin := u.Margin()
			if dead > worstArea || (dead == worstArea && margin > worstMargin) {
				worstArea, worstMargin = dead, margin
				bestA, bestB = i, j
			}
		}
	}
	return bestA, bestB
}

// linearPickSeeds finds, per dimension, the pair with the greatest
// normalized separation, and returns the overall winner (PickSeeds,
// linear variant).
func linearPickSeeds[T any](entries []entry[T]) (int, int) {
	bestA, bestB := 0, 1
	bestSep := -1.0
	for d := 0; d < Dims; d++ {
		lowestMax, highestMin := 0, 0
		lo, hi := entries[0].rect.Min[d], entries[0].rect.Max[d]
		for i, e := range entries {
			if e.rect.Max[d] < entries[lowestMax].rect.Max[d] {
				lowestMax = i
			}
			if e.rect.Min[d] > entries[highestMin].rect.Min[d] {
				highestMin = i
			}
			if e.rect.Min[d] < lo {
				lo = e.rect.Min[d]
			}
			if e.rect.Max[d] > hi {
				hi = e.rect.Max[d]
			}
		}
		if lowestMax == highestMin {
			continue
		}
		width := hi - lo
		if width <= 0 {
			width = 1
		}
		sep := (entries[highestMin].rect.Min[d] - entries[lowestMax].rect.Max[d]) / width
		if sep > bestSep {
			bestSep = sep
			bestA, bestB = lowestMax, highestMin
		}
	}
	return bestA, bestB
}

// quadraticPickNext returns the pending entry with the greatest preference
// for one group over the other (PickNext).
func quadraticPickNext[T any](rest []entry[T], rectL, rectR Rect) int {
	best := 0
	bestDiff := -1.0
	for i, e := range rest {
		dL, mL := rectL.Enlargement(e.rect)
		dR, mR := rectR.Enlargement(e.rect)
		diff := abs(dL - dR)
		if diff == 0 {
			diff = abs(mL-mR) * 1e-9 // margin-scale preference for flat boxes
		}
		if diff > bestDiff {
			bestDiff = diff
			best = i
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Search calls fn for every stored item whose rectangle intersects q.
// Return false from fn to stop early. The traversal order is unspecified.
func (t *Tree[T]) Search(q Rect, fn func(Rect, T) bool) {
	t.SearchCounted(q, fn)
}

// SearchCounted is Search, additionally reporting the cost of this one
// traversal: the nodes whose entries were examined and the leaf entries
// tested against q. The same counts still accumulate into the tree's
// lifetime Stats; the return values are the per-call slice of them that
// a query trace records.
func (t *Tree[T]) SearchCounted(q Rect, fn func(Rect, T) bool) (nodesVisited, leafEntriesScanned int64) {
	var c searchCounters
	searchNode(t.root, q, fn, &c)
	t.stats.recordSearch(c)
	return c.nodes, c.leafs
}

func searchNode[T any](n *node[T], q Rect, fn func(Rect, T) bool, c *searchCounters) bool {
	c.nodes++
	if n.leaf {
		c.leafs += int64(len(n.entries))
	}
	for _, e := range n.entries {
		if !e.rect.Intersects(q) {
			continue
		}
		if n.leaf {
			if !fn(e.rect, e.data) {
				return false
			}
		} else if !searchNode(e.child, q, fn, c) {
			return false
		}
	}
	return true
}

// SearchAll collects all items intersecting q.
func (t *Tree[T]) SearchAll(q Rect) []T {
	var out []T
	t.Search(q, func(_ Rect, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Scan calls fn for every stored item. Return false to stop early.
func (t *Tree[T]) Scan(fn func(Rect, T) bool) {
	scanNode(t.root, fn)
}

func scanNode[T any](n *node[T], fn func(Rect, T) bool) bool {
	for _, e := range n.entries {
		if n.leaf {
			if !fn(e.rect, e.data) {
				return false
			}
		} else if !scanNode(e.child, fn) {
			return false
		}
	}
	return true
}

// Bounds returns the MBR of the whole tree and whether it is non-empty.
func (t *Tree[T]) Bounds() (Rect, bool) {
	if t.size == 0 {
		return Rect{}, false
	}
	return t.root.mbr(), true
}
