package rtree

import "fmt"

// CheckInvariants verifies the structural invariants of the R-tree and
// returns the first violation found, or nil. It is exported for tests and
// for the index package's failure-injection suite; it is O(n) and not
// meant for production hot paths.
//
// Checked invariants:
//
//  1. Every leaf is at the same depth, equal to Height.
//  2. Every node except the root holds between MinEntries and MaxEntries
//     entries; the root holds at least 2 entries unless it is a leaf.
//  3. Every internal entry's rectangle is exactly the MBR of its child
//     (tight), and hence contains all descendant rectangles.
//  4. Every stored rectangle is valid.
//  5. The item count equals Len.
//
// In addition, the published snapshot (if any) is walked with the same
// structural checks against its own height and size, every snapshot node
// is verified frozen (generation strictly below the current write
// generation, so the writer cannot scribble on it without cloning), and
// the snapshot epoch is checked against the write generation — the two
// advance in lockstep, one step per publish.
func (t *Tree[T]) CheckInvariants() error {
	if err := checkTree(t.root, checkParams{
		height: t.height, size: t.size, opts: t.opts, packed: t.packed,
	}); err != nil {
		return err
	}
	s := t.snap.Load()
	if s == nil {
		if t.writeGen != 0 {
			return fmt.Errorf("rtree: writeGen %d with no published snapshot", t.writeGen)
		}
		return nil
	}
	if s.epoch != t.writeGen {
		return fmt.Errorf("rtree: snapshot epoch %d != writeGen %d (publish must advance both together)", s.epoch, t.writeGen)
	}
	if err := s.CheckInvariants(); err != nil {
		return fmt.Errorf("rtree: published snapshot (epoch %d): %w", s.epoch, err)
	}
	if err := checkFrozen(s.root, t.writeGen); err != nil {
		return fmt.Errorf("rtree: published snapshot (epoch %d): %w", s.epoch, err)
	}
	return nil
}

// checkParams carries the tree- or snapshot-level facts the structural
// walk validates against.
type checkParams struct {
	height int
	size   int
	opts   Options
	packed bool
}

func checkTree[T any](root *node[T], p checkParams) error {
	if root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	if !root.leaf && len(root.entries) < 2 {
		return fmt.Errorf("rtree: internal root with %d entries", len(root.entries))
	}
	count := 0
	if err := checkNode(root, 1, true, &count, p); err != nil {
		return err
	}
	if count != p.size {
		return fmt.Errorf("rtree: counted %d items, Len says %d", count, p.size)
	}
	return nil
}

func checkNode[T any](n *node[T], depth int, isRoot bool, count *int, p checkParams) error {
	if n.leaf {
		if depth != p.height {
			return fmt.Errorf("rtree: leaf at depth %d, height is %d", depth, p.height)
		}
	}
	if len(n.entries) > p.opts.MaxEntries {
		return fmt.Errorf("rtree: node with %d entries exceeds max %d", len(n.entries), p.opts.MaxEntries)
	}
	// STR packing legitimately leaves the last node of each level under
	// the minimum fill, so the check is skipped for bulk-loaded trees.
	if !isRoot && !p.packed && len(n.entries) < p.opts.MinEntries {
		return fmt.Errorf("rtree: non-root node with %d entries below min %d", len(n.entries), p.opts.MinEntries)
	}
	if isRoot && len(n.entries) == 0 && p.size > 0 {
		return fmt.Errorf("rtree: empty root with size %d", p.size)
	}
	for i, e := range n.entries {
		if !e.rect.Valid() {
			return fmt.Errorf("rtree: invalid rect %v at entry %d", e.rect, i)
		}
		if n.leaf {
			if e.child != nil {
				return fmt.Errorf("rtree: leaf entry %d has a child pointer", i)
			}
			*count++
			continue
		}
		if e.child == nil {
			return fmt.Errorf("rtree: internal entry %d has no child", i)
		}
		if got := e.child.mbr(); got != e.rect {
			return fmt.Errorf("rtree: entry %d rect %v is not the child MBR %v", i, e.rect, got)
		}
		if err := checkNode(e.child, depth+1, false, count, p); err != nil {
			return err
		}
	}
	return nil
}

// checkFrozen verifies no node reachable from a published snapshot root
// belongs to the current write generation: a published node must be
// immutable, so its generation has to predate every future mutation.
func checkFrozen[T any](n *node[T], writeGen uint64) error {
	if n.gen >= writeGen {
		return fmt.Errorf("rtree: node generation %d not frozen under writeGen %d", n.gen, writeGen)
	}
	if !n.leaf {
		for _, e := range n.entries {
			if err := checkFrozen(e.child, writeGen); err != nil {
				return err
			}
		}
	}
	return nil
}

// NodeCount returns the total number of nodes, for shape diagnostics.
func (t *Tree[T]) NodeCount() int {
	return countNodes(t.root)
}

func countNodes[T any](n *node[T]) int {
	c := 1
	if !n.leaf {
		for _, e := range n.entries {
			c += countNodes(e.child)
		}
	}
	return c
}
