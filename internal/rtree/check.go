package rtree

import "fmt"

// CheckInvariants verifies the structural invariants of the R-tree and
// returns the first violation found, or nil. It is exported for tests and
// for the index package's failure-injection suite; it is O(n) and not
// meant for production hot paths.
//
// Checked invariants:
//
//  1. Every leaf is at the same depth, equal to Height.
//  2. Every node except the root holds between MinEntries and MaxEntries
//     entries; the root holds at least 2 entries unless it is a leaf.
//  3. Every internal entry's rectangle is exactly the MBR of its child
//     (tight), and hence contains all descendant rectangles.
//  4. Every stored rectangle is valid.
//  5. The item count equals Len.
func (t *Tree[T]) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	if !t.root.leaf && len(t.root.entries) < 2 {
		return fmt.Errorf("rtree: internal root with %d entries", len(t.root.entries))
	}
	count := 0
	if err := t.check(t.root, 1, true, &count); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: counted %d items, Len says %d", count, t.size)
	}
	return nil
}

func (t *Tree[T]) check(n *node[T], depth int, isRoot bool, count *int) error {
	if n.leaf {
		if depth != t.height {
			return fmt.Errorf("rtree: leaf at depth %d, height is %d", depth, t.height)
		}
	}
	if len(n.entries) > t.opts.MaxEntries {
		return fmt.Errorf("rtree: node with %d entries exceeds max %d", len(n.entries), t.opts.MaxEntries)
	}
	// STR packing legitimately leaves the last node of each level under
	// the minimum fill, so the check is skipped for bulk-loaded trees.
	if !isRoot && !t.packed && len(n.entries) < t.opts.MinEntries {
		return fmt.Errorf("rtree: non-root node with %d entries below min %d", len(n.entries), t.opts.MinEntries)
	}
	if isRoot && len(n.entries) == 0 && t.size > 0 {
		return fmt.Errorf("rtree: empty root with size %d", t.size)
	}
	for i, e := range n.entries {
		if !e.rect.Valid() {
			return fmt.Errorf("rtree: invalid rect %v at entry %d", e.rect, i)
		}
		if n.leaf {
			if e.child != nil {
				return fmt.Errorf("rtree: leaf entry %d has a child pointer", i)
			}
			*count++
			continue
		}
		if e.child == nil {
			return fmt.Errorf("rtree: internal entry %d has no child", i)
		}
		if got := e.child.mbr(); got != e.rect {
			return fmt.Errorf("rtree: entry %d rect %v is not the child MBR %v", i, e.rect, got)
		}
		if err := t.check(e.child, depth+1, false, count); err != nil {
			return err
		}
	}
	return nil
}

// NodeCount returns the total number of nodes, for shape diagnostics.
func (t *Tree[T]) NodeCount() int {
	return countNodes(t.root)
}

func countNodes[T any](n *node[T]) int {
	c := 1
	if !n.leaf {
		for _, e := range n.entries {
			c += countNodes(e.child)
		}
	}
	return c
}
