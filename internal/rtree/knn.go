package rtree

import "container/heap"

// Neighbor is one nearest-neighbour result: the stored item plus its
// squared distance from the query point.
type Neighbor[T any] struct {
	Rect  Rect
	Data  T
	Dist2 float64
}

// knnItem is a priority-queue element: either an unexpanded subtree or a
// concrete leaf entry, ordered by the MinDist lower bound.
type knnItem[T any] struct {
	dist2 float64
	node  *node[T] // non-nil: subtree to expand
	rect  Rect
	data  T
}

type knnQueue[T any] []knnItem[T]

func (q knnQueue[T]) Len() int           { return len(q) }
func (q knnQueue[T]) Less(i, j int) bool { return q[i].dist2 < q[j].dist2 }
func (q knnQueue[T]) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *knnQueue[T]) Push(x any)        { *q = append(*q, x.(knnItem[T])) }
func (q *knnQueue[T]) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Nearest returns up to k stored items closest to the query point in
// index space (squared Euclidean distance over all dimensions), nearest
// first. It is the classic best-first branch-and-bound search: a subtree
// is only expanded when its bounding box is closer than every unreported
// candidate, so the scan touches the minimal set of nodes.
//
// Callers whose dimensions have incomparable units (degrees vs seconds)
// should scale their coordinates before indexing or use NearestFunc.
func (t *Tree[T]) Nearest(p [Dims]float64, k int) []Neighbor[T] {
	return t.NearestFunc(p, k, nil)
}

// NearestFunc is Nearest with an optional filter; items rejected by the
// filter are skipped without counting toward k.
func (t *Tree[T]) NearestFunc(p [Dims]float64, k int, keep func(Rect, T) bool) []Neighbor[T] {
	return nearestFunc(t.root, t.size, t.opts.MaxEntries, p, k, keep, &t.stats)
}

func nearestFunc[T any](root *node[T], size, maxEntries int, p [Dims]float64, k int, keep func(Rect, T) bool, st *stats) []Neighbor[T] {
	if k <= 0 || size == 0 {
		return nil
	}
	q := make(knnQueue[T], 0, maxEntries*2)
	heap.Push(&q, knnItem[T]{dist2: 0, node: root})
	out := make([]Neighbor[T], 0, k)
	var c searchCounters
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(&q).(knnItem[T])
		if it.node == nil {
			if keep == nil || keep(it.rect, it.data) {
				out = append(out, Neighbor[T]{Rect: it.rect, Data: it.data, Dist2: it.dist2})
			}
			continue
		}
		c.nodes++
		if it.node.leaf {
			c.leafs += int64(len(it.node.entries))
		}
		for _, e := range it.node.entries {
			child := knnItem[T]{dist2: e.rect.MinDist(p), rect: e.rect}
			if it.node.leaf {
				child.data = e.data
			} else {
				child.node = e.child
			}
			heap.Push(&q, child)
		}
	}
	st.recordSearch(c)
	return out
}

// WeightedNearest is Nearest with per-dimension weights: distance is the
// weighted squared Euclidean over index space, and a weight of zero
// removes a dimension from the metric entirely (it still participates in
// filtering via keep). maxDist2 > 0 bounds the search: once the frontier
// exceeds it the scan stops, which keeps filtered kNN from draining the
// whole tree when fewer than k items qualify. The FoV index uses this to
// rank by geographic distance while treating time as a pure filter,
// bounded at the radius of view (beyond which coverage is impossible).
func (t *Tree[T]) WeightedNearest(p [Dims]float64, w [Dims]float64, k int, maxDist2 float64, keep func(Rect, T) bool) []Neighbor[T] {
	return weightedNearest(t.root, t.size, t.opts.MaxEntries, p, w, k, maxDist2, keep, &t.stats)
}

func weightedNearest[T any](root *node[T], size, maxEntries int, p, w [Dims]float64, k int, maxDist2 float64, keep func(Rect, T) bool, st *stats) []Neighbor[T] {
	if k <= 0 || size == 0 {
		return nil
	}
	dist := func(r Rect) float64 {
		sum := 0.0
		for d := 0; d < Dims; d++ {
			if w[d] == 0 {
				continue
			}
			v := p[d]
			var diff float64
			if v < r.Min[d] {
				diff = r.Min[d] - v
			} else if v > r.Max[d] {
				diff = v - r.Max[d]
			}
			diff *= w[d]
			sum += diff * diff
		}
		return sum
	}
	q := make(knnQueue[T], 0, maxEntries*2)
	heap.Push(&q, knnItem[T]{dist2: 0, node: root})
	out := make([]Neighbor[T], 0, k)
	var c searchCounters
	for q.Len() > 0 && len(out) < k {
		it := heap.Pop(&q).(knnItem[T])
		if maxDist2 > 0 && it.dist2 > maxDist2 {
			break // frontier beyond the bound: nothing closer remains
		}
		if it.node == nil {
			if keep == nil || keep(it.rect, it.data) {
				out = append(out, Neighbor[T]{Rect: it.rect, Data: it.data, Dist2: it.dist2})
			}
			continue
		}
		c.nodes++
		if it.node.leaf {
			c.leafs += int64(len(it.node.entries))
		}
		for _, e := range it.node.entries {
			child := knnItem[T]{dist2: dist(e.rect), rect: e.rect}
			if it.node.leaf {
				child.data = e.data
			} else {
				child.node = e.child
			}
			heap.Push(&q, child)
		}
	}
	st.recordSearch(c)
	return out
}
