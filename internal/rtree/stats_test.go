package rtree

import (
	"math/rand"
	"testing"
)

func TestStatsCounters(t *testing.T) {
	tr := MustNew[int](Options{MaxEntries: 4})
	n := 100
	for i := 0; i < n; i++ {
		r := Rect{
			Min: [Dims]float64{float64(i), float64(i), 0},
			Max: [Dims]float64{float64(i) + 1, float64(i) + 1, 1},
		}
		if err := tr.Insert(r, i); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Inserts != int64(n) {
		t.Fatalf("Inserts = %d, want %d", st.Inserts, n)
	}
	if st.Splits == 0 {
		t.Fatal("expected splits after 100 inserts into M=4 nodes")
	}
	if st.Searches != 0 || st.NodeVisits != 0 {
		t.Fatalf("search counters non-zero before any search: %+v", st)
	}

	// A range search visits at least the root and scans some leaves.
	tr.SearchAll(Rect{
		Min: [Dims]float64{0, 0, 0},
		Max: [Dims]float64{10, 10, 1},
	})
	st = tr.Stats()
	if st.Searches != 1 {
		t.Fatalf("Searches = %d, want 1", st.Searches)
	}
	if st.NodeVisits == 0 || st.LeafEntriesScanned == 0 {
		t.Fatalf("search recorded no work: %+v", st)
	}

	// kNN records as a search too.
	tr.Nearest([Dims]float64{50, 50, 0}, 3)
	if got := tr.Stats().Searches; got != 2 {
		t.Fatalf("Searches after kNN = %d, want 2", got)
	}

	// Deletes and reinserts.
	before := tr.Stats()
	for i := 0; i < n; i++ {
		r := Rect{
			Min: [Dims]float64{float64(i), float64(i), 0},
			Max: [Dims]float64{float64(i) + 1, float64(i) + 1, 1},
		}
		if !tr.Delete(r, func(v int) bool { return v == i }) {
			t.Fatalf("delete %d failed", i)
		}
	}
	st = tr.Stats()
	if st.Deletes-before.Deletes != int64(n) {
		t.Fatalf("Deletes = %d, want %d", st.Deletes-before.Deletes, n)
	}
	if st.Reinserts == 0 {
		t.Fatal("expected condense reinserts while draining the tree")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchCountedPerCall(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	tree := MustNew[int](Options{MaxEntries: 8})
	for i := 0; i < 500; i++ {
		if err := tree.Insert(randRect(rng, false), i); err != nil {
			t.Fatal(err)
		}
	}
	before := tree.Stats()
	q := randRect(rng, false)
	hits := 0
	nodes, leafs := tree.SearchCounted(q, func(Rect, int) bool { hits++; return true })
	if nodes <= 0 {
		t.Fatalf("nodesVisited = %d, want > 0 (root is always examined)", nodes)
	}
	if int64(hits) > leafs {
		t.Fatalf("returned %d hits but scanned only %d leaf entries", hits, leafs)
	}
	after := tree.Stats()
	if after.Searches != before.Searches+1 {
		t.Fatalf("lifetime searches advanced by %d, want 1", after.Searches-before.Searches)
	}
	if after.NodeVisits-before.NodeVisits != nodes || after.LeafEntriesScanned-before.LeafEntriesScanned != leafs {
		t.Fatalf("per-call counts (%d, %d) disagree with lifetime deltas (%d, %d)",
			nodes, leafs, after.NodeVisits-before.NodeVisits, after.LeafEntriesScanned-before.LeafEntriesScanned)
	}

	// Counted and plain search must agree on the result set.
	want := map[int]bool{}
	tree.Search(q, func(_ Rect, v int) bool { want[v] = true; return true })
	if len(want) != hits {
		t.Fatalf("SearchCounted saw %d hits, Search saw %d", hits, len(want))
	}
}
