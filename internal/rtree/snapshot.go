package rtree

// Snapshot is an immutable point-in-time view of a Tree, published by the
// writer with Publish and loaded by readers with Tree.Snapshot. Readers
// traverse the frozen node graph with no locks and no coordination with
// the writer: copy-on-write mutation guarantees no published node is ever
// written again, so a reader can never observe torn state, and every read
// is consistent with exactly the publish it loaded (the epoch).
//
// Search statistics recorded through a snapshot accumulate into the
// owning tree's lifetime counters (the stats block is shared and atomic),
// so metrics keep counting regardless of which path served the read.
type Snapshot[T any] struct {
	root   *node[T]
	height int
	size   int
	epoch  uint64
	opts   Options
	packed bool
	stats  *stats
}

// Snapshot returns the most recently published read-only view. It is
// safe to call concurrently with a writer; the result is never nil for a
// tree built by New or BulkLoad.
func (t *Tree[T]) Snapshot() *Snapshot[T] { return t.snap.Load() }

// Publish freezes the tree's current state into a new immutable Snapshot,
// makes it the one Tree.Snapshot returns, and bumps the write generation
// so any later mutation clones shared nodes instead of writing them in
// place. Publish must be called from the (externally serialized) writer;
// batching several mutations under one Publish makes them visible to
// readers atomically.
//
// The snapshot epoch increases by exactly 1 per publish and always equals
// the tree's post-publish write generation.
func (t *Tree[T]) Publish() *Snapshot[T] {
	epoch := uint64(1)
	if prev := t.snap.Load(); prev != nil {
		epoch = prev.epoch + 1
	}
	s := &Snapshot[T]{
		root:   t.root,
		height: t.height,
		size:   t.size,
		epoch:  epoch,
		opts:   t.opts,
		packed: t.packed,
		stats:  &t.stats,
	}
	t.snap.Store(s)
	t.writeGen++ // freeze every current node: future mutations must clone
	return s
}

// mutable returns a node the writer may mutate in place: n itself when it
// already belongs to the current write generation, otherwise a clone with
// freshly copied entries. The caller must re-link the returned node into
// its parent (or the root).
func (t *Tree[T]) mutable(n *node[T]) *node[T] {
	if n.gen == t.writeGen {
		return n
	}
	c := &node[T]{
		leaf: n.leaf,
		gen:  t.writeGen,
		// One spare slot: the common next step is appending an entry.
		entries: append(make([]entry[T], 0, len(n.entries)+1), n.entries...),
	}
	return c
}

// assertMutable panics if the writer is about to mutate a node that may
// be shared with a published snapshot. Compiled out unless the fovrdebug
// build tag is set (immutableChecks is a constant).
func (t *Tree[T]) assertMutable(n *node[T]) {
	if immutableChecks && n.gen != t.writeGen {
		panic("rtree: write to a node owned by a published snapshot")
	}
}

// Epoch identifies the publish that produced this snapshot; it increases
// by 1 per publish on the owning tree.
func (s *Snapshot[T]) Epoch() uint64 { return s.epoch }

// Len returns the number of items in the snapshot.
func (s *Snapshot[T]) Len() int { return s.size }

// Height returns the number of levels (1 when the root is a leaf).
func (s *Snapshot[T]) Height() int { return s.height }

// Search calls fn for every item in the snapshot whose rectangle
// intersects q. Return false from fn to stop early.
func (s *Snapshot[T]) Search(q Rect, fn func(Rect, T) bool) {
	s.SearchCounted(q, fn)
}

// SearchCounted is Search, additionally reporting this traversal's node
// visits and leaf entries scanned (the same per-call costs
// Tree.SearchCounted reports).
func (s *Snapshot[T]) SearchCounted(q Rect, fn func(Rect, T) bool) (nodesVisited, leafEntriesScanned int64) {
	var c searchCounters
	searchNode(s.root, q, fn, &c)
	s.stats.recordSearch(c)
	return c.nodes, c.leafs
}

// SearchAll collects all items intersecting q.
func (s *Snapshot[T]) SearchAll(q Rect) []T {
	var out []T
	s.Search(q, func(_ Rect, v T) bool {
		out = append(out, v)
		return true
	})
	return out
}

// Scan calls fn for every item in the snapshot. Return false to stop.
func (s *Snapshot[T]) Scan(fn func(Rect, T) bool) {
	scanNode(s.root, fn)
}

// Bounds returns the MBR of the snapshot and whether it is non-empty.
func (s *Snapshot[T]) Bounds() (Rect, bool) {
	if s.size == 0 {
		return Rect{}, false
	}
	return s.root.mbr(), true
}

// NearestFunc is the snapshot edition of Tree.NearestFunc.
func (s *Snapshot[T]) NearestFunc(p [Dims]float64, k int, keep func(Rect, T) bool) []Neighbor[T] {
	return nearestFunc(s.root, s.size, s.opts.MaxEntries, p, k, keep, s.stats)
}

// WeightedNearest is the snapshot edition of Tree.WeightedNearest.
func (s *Snapshot[T]) WeightedNearest(p [Dims]float64, w [Dims]float64, k int, maxDist2 float64, keep func(Rect, T) bool) []Neighbor[T] {
	return weightedNearest(s.root, s.size, s.opts.MaxEntries, p, w, k, maxDist2, keep, s.stats)
}

// NodeCount returns the number of nodes in the snapshot.
func (s *Snapshot[T]) NodeCount() int { return countNodes(s.root) }

// CheckInvariants verifies the snapshot's structural invariants (same
// checks as Tree.CheckInvariants, against the snapshot's own height and
// size).
func (s *Snapshot[T]) CheckInvariants() error {
	return checkTree(s.root, checkParams{
		height: s.height, size: s.size, opts: s.opts, packed: s.packed,
	})
}
