// Package rtree is a from-scratch, stdlib-only implementation of Guttman's
// R-tree ("R-trees: a dynamic index structure for spatial searching",
// SIGMOD 1984), the height-balanced spatial index the paper's cloud server
// maintains over representative FoVs (Section V-A).
//
// The tree indexes three-dimensional rectangles — the paper stores each
// representative FoV as the degenerate box
//
//	min[] = [lng, lat, t_s],  max[] = [lng, lat, t_e]
//
// i.e. a vertical segment in (longitude, latitude, time) space — and
// answers range queries with boxes built from the querier's circle and
// time interval. Degenerate (zero-volume) rectangles are therefore the
// dominant workload here, and the node-split heuristics are exercised and
// tested against them specifically.
//
// Features: insert with quadratic (default) or linear split, delete with
// tree condensation and reinsertion, range search, nearest-neighbour
// search (branch-and-bound), and sort-tile-recursive (STR) bulk loading.
// The tree is not safe for concurrent mutation; package index wraps it
// with the locking the retrieval server needs.
package rtree

import (
	"fmt"
	"math"
)

// Dims is the dimensionality of the index: longitude, latitude, time.
const Dims = 3

// Rect is an axis-aligned box in index space. A point or a degenerate
// segment is represented with Min == Max in the flat dimensions.
type Rect struct {
	Min, Max [Dims]float64
}

// Point builds a degenerate rectangle from a single point.
func Point(p [Dims]float64) Rect { return Rect{Min: p, Max: p} }

// Valid reports whether the rectangle is well-formed: finite and
// Min <= Max in every dimension.
func (r Rect) Valid() bool {
	for d := 0; d < Dims; d++ {
		if math.IsNaN(r.Min[d]) || math.IsNaN(r.Max[d]) ||
			math.IsInf(r.Min[d], 0) || math.IsInf(r.Max[d], 0) ||
			r.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

func (r Rect) String() string {
	return fmt.Sprintf("[%v..%v]", r.Min, r.Max)
}

// Intersects reports whether two boxes overlap (boundary contact counts,
// matching the paper's "have intersection with" retrieval semantics).
func (r Rect) Intersects(o Rect) bool {
	for d := 0; d < Dims; d++ {
		if r.Min[d] > o.Max[d] || o.Min[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Contains reports whether o lies entirely inside r (inclusive).
func (r Rect) Contains(o Rect) bool {
	for d := 0; d < Dims; d++ {
		if o.Min[d] < r.Min[d] || o.Max[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether the point lies inside r (inclusive).
func (r Rect) ContainsPoint(p [Dims]float64) bool {
	for d := 0; d < Dims; d++ {
		if p[d] < r.Min[d] || p[d] > r.Max[d] {
			return false
		}
	}
	return true
}

// Union returns the minimum bounding rectangle of r and o.
func (r Rect) Union(o Rect) Rect {
	var u Rect
	for d := 0; d < Dims; d++ {
		u.Min[d] = math.Min(r.Min[d], o.Min[d])
		u.Max[d] = math.Max(r.Max[d], o.Max[d])
	}
	return u
}

// Area returns the d-dimensional volume of r. Degenerate boxes have zero
// area; split heuristics fall back to margins in that case.
func (r Rect) Area() float64 {
	a := 1.0
	for d := 0; d < Dims; d++ {
		a *= r.Max[d] - r.Min[d]
	}
	return a
}

// Margin returns the sum of edge lengths of r (the L1 perimeter measure
// used as a tie-breaker for zero-volume boxes).
func (r Rect) Margin() float64 {
	m := 0.0
	for d := 0; d < Dims; d++ {
		m += r.Max[d] - r.Min[d]
	}
	return m
}

// Enlargement returns how much r's area must grow to absorb o, with the
// margin growth as a secondary measure for the degenerate case. The two
// values order candidate subtrees during ChooseLeaf.
func (r Rect) Enlargement(o Rect) (dArea, dMargin float64) {
	u := r.Union(o)
	return u.Area() - r.Area(), u.Margin() - r.Margin()
}

// MinDist returns the squared minimum distance from a point to the
// rectangle (0 when the point is inside). It is the classic R-tree
// branch-and-bound lower bound for nearest-neighbour search.
func (r Rect) MinDist(p [Dims]float64) float64 {
	sum := 0.0
	for d := 0; d < Dims; d++ {
		v := p[d]
		if v < r.Min[d] {
			diff := r.Min[d] - v
			sum += diff * diff
		} else if v > r.Max[d] {
			diff := v - r.Max[d]
			sum += diff * diff
		}
	}
	return sum
}

// Center returns the rectangle's center point.
func (r Rect) Center() [Dims]float64 {
	var c [Dims]float64
	for d := 0; d < Dims; d++ {
		c[d] = (r.Min[d] + r.Max[d]) / 2
	}
	return c
}
