package rtree

import "sort"

// rstarSplit implements the R*-tree split of Beckmann et al. (SIGMOD
// 1990), split phase only (forced reinsertion is intentionally omitted —
// it changes insert's control flow for a gain our degenerate-rectangle
// workload doesn't show; the ablation benchmarks compare all three
// splits as implemented).
//
// ChooseSplitAxis: for every dimension, sort the entries by lower then by
// upper boundary and sum the margins of all legal two-group
// distributions; the axis with the minimal margin sum wins.
// ChooseSplitIndex: on the winning axis, take the distribution with the
// least overlap between the two groups' MBRs, breaking ties by least
// total area.
func rstarSplit[T any](entries []entry[T], minFill int) (left, right []entry[T]) {
	n := len(entries)
	maxK := n - minFill // distributions: first group gets minFill..maxK entries

	type axisSort struct {
		byMin, byMax []entry[T]
	}
	sortBy := func(d int, upper bool) []entry[T] {
		s := append([]entry[T](nil), entries...)
		sort.SliceStable(s, func(i, j int) bool {
			if upper {
				return s[i].rect.Max[d] < s[j].rect.Max[d]
			}
			return s[i].rect.Min[d] < s[j].rect.Min[d]
		})
		return s
	}

	// prefix/suffix MBRs for one sorted order let every distribution's
	// margin/overlap/area be evaluated in O(1).
	type dists struct {
		order  []entry[T]
		prefix []Rect // prefix[i] = MBR of order[:i+1]
		suffix []Rect // suffix[i] = MBR of order[i:]
	}
	build := func(order []entry[T]) dists {
		prefix := make([]Rect, n)
		suffix := make([]Rect, n)
		prefix[0] = order[0].rect
		for i := 1; i < n; i++ {
			prefix[i] = prefix[i-1].Union(order[i].rect)
		}
		suffix[n-1] = order[n-1].rect
		for i := n - 2; i >= 0; i-- {
			suffix[i] = suffix[i+1].Union(order[i].rect)
		}
		return dists{order: order, prefix: prefix, suffix: suffix}
	}

	bestAxis := -1
	bestMarginSum := 0.0
	var bestSorts [2]dists
	for d := 0; d < Dims; d++ {
		s := axisSort{byMin: sortBy(d, false), byMax: sortBy(d, true)}
		marginSum := 0.0
		ds := [2]dists{build(s.byMin), build(s.byMax)}
		for _, dd := range ds {
			for k := minFill; k <= maxK; k++ {
				marginSum += dd.prefix[k-1].Margin() + dd.suffix[k].Margin()
			}
		}
		if bestAxis == -1 || marginSum < bestMarginSum {
			bestAxis, bestMarginSum = d, marginSum
			bestSorts = ds
		}
	}

	// ChooseSplitIndex over both sort orders of the winning axis.
	bestOverlap := -1.0
	bestArea := 0.0
	var bestOrder []entry[T]
	bestK := 0
	for _, dd := range bestSorts {
		for k := minFill; k <= maxK; k++ {
			l, r := dd.prefix[k-1], dd.suffix[k]
			ov := overlapArea(l, r)
			area := l.Area() + r.Area()
			if bestOverlap < 0 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = ov, area
				bestOrder, bestK = dd.order, k
			}
		}
	}
	return bestOrder[:bestK], bestOrder[bestK:]
}

// overlapArea returns the volume of the intersection of two boxes.
func overlapArea(a, b Rect) float64 {
	v := 1.0
	for d := 0; d < Dims; d++ {
		lo := a.Min[d]
		if b.Min[d] > lo {
			lo = b.Min[d]
		}
		hi := a.Max[d]
		if b.Max[d] < hi {
			hi = b.Max[d]
		}
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}
