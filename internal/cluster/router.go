// The scatter-gather query router: a stateless process serving the
// single-node HTTP surface (/query, /nearest, /upload) over a
// partitioned cluster. Queries fan out to the partitions owning the
// query's window range, hedge to replicas when the leader is slow, and
// merge under the exact contract index.Sharded enforces — so a routed
// result is byte-identical to the same corpus on one node. Uploads
// split into per-owner runs and forward to partition leaders.
package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fovr/internal/client"
	"fovr/internal/obs"
	"fovr/internal/query"
	"fovr/internal/segment"
	"fovr/internal/server"
	"fovr/internal/wire"
)

// RouterConfig configures a Router.
type RouterConfig struct {
	// Topology is the validated partition map. Required.
	Topology *Topology
	// PartitionTimeout bounds each partition's total answer time,
	// hedges included. Zero selects 5s.
	PartitionTimeout time.Duration
	// HedgeAfter is the per-endpoint latency threshold after which the
	// router fires the same request at the partition's next endpoint
	// (leader first, then replicas; first success wins). Zero selects
	// 50ms; negative disables hedging.
	HedgeAfter time.Duration
	// ProbeTimeout bounds each /healthz probe of a partition node.
	// Zero selects 1s.
	ProbeTimeout time.Duration
	// DefaultMaxResults is the top-N when a query names none. It must
	// match the partitions' server.Config.DefaultMaxResults — the merge
	// is only byte-faithful when router and partitions truncate at the
	// same N. Zero selects 20, the server default.
	DefaultMaxResults int
	// MaxUploadBytes bounds upload bodies. Zero selects 8 MiB.
	MaxUploadBytes int64
	// Registry receives the fovr_cluster_* metrics; nil selects
	// obs.Default.
	Registry *obs.Registry
	// Logger receives request diagnostics; nil silences them.
	Logger *slog.Logger
	// HTTPClient, when non-nil, is shared by every partition client
	// (tests inject per-endpoint transports via the topology URLs).
	HTTPClient *http.Client
}

// routerPartition is one partition's client set, in hedging order.
type routerPartition struct {
	part    *Partition
	clients []*client.Partition // [leader, replicas...]
	latency *obs.Histogram      // µs per answered scatter leg
	errors  *obs.Counter
}

// Router scatter-gathers the single-node API over a partition map.
type Router struct {
	cfg    RouterConfig
	topo   *Topology
	parts  []*routerPartition
	reg    *obs.Registry
	log    *slog.Logger
	health *obs.HealthSet

	fanout *obs.Histogram // partitions visited per query
	hedges *obs.Counter   // hedge requests fired

	// Hedge-saturation accounting for the health checker: queries and
	// hedged queries since the counters were last inspected.
	queriesTotal  atomic.Int64
	queriesHedged atomic.Int64

	started time.Time
}

// NewRouter builds a router over a validated topology.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Topology == nil {
		return nil, errors.New("cluster: router: nil topology")
	}
	if cfg.PartitionTimeout == 0 {
		cfg.PartitionTimeout = 5 * time.Second
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 50 * time.Millisecond
	}
	if cfg.ProbeTimeout == 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.DefaultMaxResults == 0 {
		cfg.DefaultMaxResults = 20
	}
	if cfg.MaxUploadBytes == 0 {
		cfg.MaxUploadBytes = 8 << 20
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.Default
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(nopHandler{})
	}
	rt := &Router{
		cfg:     cfg,
		topo:    cfg.Topology,
		reg:     cfg.Registry,
		log:     log,
		fanout:  cfg.Registry.Histogram("fovr_cluster_fanout_partitions"),
		hedges:  cfg.Registry.Counter("fovr_cluster_hedges_total"),
		started: time.Now(),
	}
	for i := range rt.topo.Partitions {
		p := &rt.topo.Partitions[i]
		rp := &routerPartition{
			part:    p,
			latency: cfg.Registry.Histogram(fmt.Sprintf("fovr_cluster_partition_latency_micros{partition=%q}", p.ID)),
			errors:  cfg.Registry.Counter(fmt.Sprintf("fovr_cluster_partition_errors_total{partition=%q}", p.ID)),
		}
		for _, ep := range p.Endpoints() {
			pc := client.NewPartition(ep)
			if cfg.HTTPClient != nil {
				pc.HTTPClient = cfg.HTTPClient
			}
			rp.clients = append(rp.clients, pc)
		}
		rt.parts = append(rt.parts, rp)
	}
	rt.health = obs.NewHealthSet()
	rt.registerHealthChecks()
	return rt, nil
}

// partition returns the client set for a topology partition.
func (rt *Router) partition(p *Partition) *routerPartition {
	for _, rp := range rt.parts {
		if rp.part == p {
			return rp
		}
	}
	return nil
}

// Handler returns the router's HTTP surface.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", rt.handleQuery)
	mux.HandleFunc("/nearest", rt.handleNearest)
	mux.HandleFunc("/upload", rt.handleUpload)
	mux.HandleFunc("/cluster/topology", rt.handleTopology)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// nopHandler mirrors the server package's silent logger.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func respondJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	_, _ = w.Write(data)
}

// traceID returns the propagated trace id or mints a router one.
func (rt *Router) traceID(r *http.Request) string {
	if id := r.Header.Get(server.TraceHeader); id != "" {
		return id
	}
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rt-00000000"
	}
	return "rt-" + hex.EncodeToString(b[:])
}

// scatterResult is one partition's answer to a scattered call.
type scatterResult[T any] struct {
	part   *Partition
	resp   T
	hedges int
	err    error
}

// scatter runs call against every owner partition concurrently, each
// under the partition timeout with hedging across its endpoints, and
// returns the per-partition outcomes in owner order.
func scatter[T any](rt *Router, ctx context.Context, owners []*Partition,
	call func(ctx context.Context, pc *client.Partition) (T, error)) []scatterResult[T] {

	out := make([]scatterResult[T], len(owners))
	var wg sync.WaitGroup
	for i, p := range owners {
		rp := rt.partition(p)
		wg.Add(1)
		go func(i int, p *Partition, rp *routerPartition) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.PartitionTimeout)
			defer cancel()
			start := time.Now()
			resp, hedges, err := hedgedCall(pctx, rp.clients, rt.cfg.HedgeAfter, call)
			rp.latency.Observe(float64(time.Since(start).Microseconds()))
			if err != nil {
				rp.errors.Inc()
			}
			if hedges > 0 {
				rt.hedges.Add(int64(hedges))
			}
			out[i] = scatterResult[T]{part: p, resp: resp, hedges: hedges, err: err}
		}(i, p, rp)
	}
	wg.Wait()
	return out
}

// hedgedCall runs call against eps[0] and, each time hedgeAfter
// elapses without an answer — or every in-flight attempt has failed —
// fires the next endpoint. First success wins and cancels the rest;
// the error case joins every endpoint's failure. hedges counts the
// extra requests fired.
func hedgedCall[T any](ctx context.Context, eps []*client.Partition, hedgeAfter time.Duration,
	call func(ctx context.Context, pc *client.Partition) (T, error)) (T, int, error) {

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type attempt struct {
		resp T
		err  error
	}
	ch := make(chan attempt, len(eps))
	launched := 0
	launch := func() {
		ep := eps[launched]
		launched++
		go func() {
			resp, err := call(cctx, ep)
			ch <- attempt{resp, err}
		}()
	}
	launch()
	var timer *time.Timer
	var timerC <-chan time.Time
	if hedgeAfter > 0 && len(eps) > 1 {
		timer = time.NewTimer(hedgeAfter)
		defer timer.Stop()
		timerC = timer.C
	}
	var errs []error
	done := 0
	for {
		select {
		case a := <-ch:
			if a.err == nil {
				return a.resp, launched - 1, nil
			}
			errs = append(errs, a.err)
			done++
			if done == launched {
				// Every attempt so far failed: fire the next endpoint
				// immediately rather than waiting out the hedge timer.
				if launched < len(eps) {
					launch()
					continue
				}
				var zero T
				return zero, launched - 1, errors.Join(errs...)
			}
		case <-timerC:
			if launched < len(eps) {
				launch()
			}
			if launched < len(eps) {
				timer.Reset(hedgeAfter)
			} else {
				timerC = nil
			}
		case <-cctx.Done():
			var zero T
			return zero, launched - 1, errors.Join(append(errs, cctx.Err())...)
		}
	}
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	var req server.QueryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "json: %v", err)
		return
	}
	if err := req.Query.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	explain := r.URL.Query().Get("explain") == "1"
	max := req.MaxResults
	if max <= 0 {
		max = rt.cfg.DefaultMaxResults
	}
	req.MaxResults = max // partitions must rank under the same top-N
	trace := rt.traceID(r)
	start := time.Now()

	owners := rt.topo.OwnersForQuery(req.StartMillis, req.EndMillis)
	rt.fanout.Observe(float64(len(owners)))
	path := "/query"
	if explain {
		path = "/query?explain=1"
	}
	results := scatter(rt, r.Context(), owners, func(ctx context.Context, pc *client.Partition) (server.QueryResponse, error) {
		var resp server.QueryResponse
		err := pc.PostJSON(ctx, path, req, &resp, trace)
		return resp, err
	})
	rt.accountQuery(results)

	lists := make([][]query.Ranked, 0, len(results))
	var tr *obs.QueryTrace
	if explain {
		tr = obs.NewQueryTrace(trace)
		tr.SetQuery(fmt.Sprintf("cluster center=(%.6f,%.6f) r=%.0fm t=[%d,%d] top=%d fanout=%d",
			req.Center.Lat, req.Center.Lng, req.RadiusMeters, req.StartMillis, req.EndMillis, max, len(owners)))
	}
	for _, res := range results {
		if res.err != nil {
			// Correctness over partial answers: a missing owner means
			// missing results, and a silent partial merge would break
			// the byte-identical contract. 502 names the partition.
			rt.log.Error("partition query failed", "partition", res.part.ID, "traceID", trace, "err", res.err)
			httpError(w, http.StatusBadGateway, "partition %q: %v", res.part.ID, res.err)
			return
		}
		lists = append(lists, res.resp.Results)
		if tr != nil && res.resp.Trace != nil {
			// The routed trace's index cost is the sum over partitions —
			// the same nodes the single-node fan-out would have visited.
			tr.AddIndexVisit(res.resp.Trace.NodesVisited, res.resp.Trace.LeafEntriesScanned)
		}
	}
	merged := query.MergeRanked(lists, max)
	if merged == nil {
		merged = []query.Ranked{}
	}
	resp := server.QueryResponse{
		Results:       merged,
		ElapsedMicros: time.Since(start).Microseconds(),
		TraceID:       trace,
	}
	if tr != nil {
		tr.Finish(nil)
		resp.Trace = tr
	}
	rt.log.Info("query", "fanout", len(owners), "hits", len(merged), "traceID", trace)
	respondJSON(w, resp)
}

func (rt *Router) handleNearest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<16))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	var req server.NearestRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "json: %v", err)
		return
	}
	if req.K <= 0 {
		req.K = rt.cfg.DefaultMaxResults
	}
	trace := rt.traceID(r)
	start := time.Now()
	owners := rt.topo.OwnersForQuery(req.StartMillis, req.EndMillis)
	rt.fanout.Observe(float64(len(owners)))
	results := scatter(rt, r.Context(), owners, func(ctx context.Context, pc *client.Partition) (server.NearestResponse, error) {
		var resp server.NearestResponse
		err := pc.PostJSON(ctx, "/nearest", req, &resp, trace)
		return resp, err
	})
	rt.accountQuery(results)
	lists := make([][]query.Ranked, 0, len(results))
	for _, res := range results {
		if res.err != nil {
			rt.log.Error("partition nearest failed", "partition", res.part.ID, "traceID", trace, "err", res.err)
			httpError(w, http.StatusBadGateway, "partition %q: %v", res.part.ID, res.err)
			return
		}
		lists = append(lists, res.resp.Results)
	}
	merged := query.MergeNearest(req.Center, lists, req.K)
	if merged == nil {
		merged = []query.Ranked{}
	}
	rt.log.Info("nearest", "fanout", len(owners), "hits", len(merged), "traceID", trace)
	respondJSON(w, server.NearestResponse{
		Results:       merged,
		ElapsedMicros: time.Since(start).Microseconds(),
		TraceID:       trace,
	})
}

// accountQuery feeds the hedge-saturation health signal.
func accountOne[T any](rt *Router, results []scatterResult[T]) {
	rt.queriesTotal.Add(1)
	for _, res := range results {
		if res.hedges > 0 {
			rt.queriesHedged.Add(1)
			return
		}
	}
}

func (rt *Router) accountQuery(results any) {
	switch rs := results.(type) {
	case []scatterResult[server.QueryResponse]:
		accountOne(rt, rs)
	case []scatterResult[server.NearestResponse]:
		accountOne(rt, rs)
	}
}

func (rt *Router) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxUploadBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	if int64(len(body)) > rt.cfg.MaxUploadBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "upload exceeds %d bytes", rt.cfg.MaxUploadBytes)
		return
	}
	var u wire.Upload
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "application/json"):
		if err := json.Unmarshal(body, &u); err != nil {
			httpError(w, http.StatusBadRequest, "json: %v", err)
			return
		}
	default:
		u, err = wire.DecodeBinary(body)
		if err != nil {
			httpError(w, http.StatusBadRequest, "decode: %v", err)
			return
		}
	}
	trace := rt.traceID(r)
	runs, err := rt.splitUpload(u)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Forward run-by-run in order. A failure after earlier runs
	// committed leaves a partial upload — the same at-least-once
	// exposure the single-node client retry already documents — so the
	// error names how far ingest got.
	ids := make([]uint64, len(u.Reps))
	for runIdx, run := range runs {
		rp := rt.partition(run.owner)
		sub := wire.Upload{Provider: u.Provider, Reps: run.reps, Camera: u.Camera}
		resp, err := rp.clients[0].Upload(r.Context(), sub, trace)
		if err != nil {
			rp.errors.Inc()
			rt.log.Error("partition upload failed", "partition", run.owner.ID, "traceID", trace, "err", err)
			httpError(w, http.StatusBadGateway,
				"partition %q: %v (%d of %d runs committed; resubmitting the upload is safe but may duplicate reps)",
				run.owner.ID, err, runIdx, len(runs))
			return
		}
		if len(resp.IDs) != len(run.reps) {
			httpError(w, http.StatusBadGateway, "partition %q: %d ids for %d reps", run.owner.ID, len(resp.IDs), len(run.reps))
			return
		}
		for i, id := range resp.IDs {
			ids[run.positions[i]] = id
		}
	}
	rt.log.Info("upload", "provider", u.Provider, "reps", len(u.Reps), "runs", len(runs), "traceID", trace)
	respondJSON(w, server.UploadResponse{IDs: ids, TraceID: trace})
}

// uploadRun is a maximal contiguous slice of an upload's reps owned by
// one partition, with the original positions so ids reassemble in rep
// order.
type uploadRun struct {
	owner     *Partition
	reps      []segment.Representative
	positions []int
}

// splitUpload groups an upload's reps into contiguous per-owner runs,
// preserving order.
func (rt *Router) splitUpload(u wire.Upload) ([]uploadRun, error) {
	var runs []uploadRun
	for i, rep := range u.Reps {
		owner, err := rt.topo.OwnerOfRep(rep)
		if err != nil {
			return nil, err
		}
		if len(runs) > 0 && runs[len(runs)-1].owner == owner {
			last := &runs[len(runs)-1]
			last.reps = append(last.reps, rep)
			last.positions = append(last.positions, i)
			continue
		}
		runs = append(runs, uploadRun{owner: owner, reps: []segment.Representative{rep}, positions: []int{i}})
	}
	return runs, nil
}

func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	respondJSON(w, rt.topo)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = rt.reg.WritePrometheus(w)
}
