package cluster

import (
	"math"
	"strings"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/segment"
)

func rep(p geo.Point, start, end int64) segment.Representative {
	return segment.Representative{FoV: fov.FoV{P: p, Theta: 90}, StartMillis: start, EndMillis: end}
}

func threeWay(t *testing.T) *Topology {
	t.Helper()
	topo, err := Parse([]byte(`{
		"windowMillis": 3600000,
		"spatialShards": 8,
		"partitions": [
			{"id": "p0", "leader": "http://a:1", "windows": [{"from": 0, "to": 7}], "spatialCells": [0,1,2]},
			{"id": "p1", "leader": "http://b:1", "replicas": ["http://b:2"], "windows": [{"from": 8, "to": 15}], "spatialCells": [3,4,5]},
			{"id": "p2", "leader": "http://c:1", "windows": [{"from": 16, "to": 23}], "spatialCells": [6,7]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyValidate(t *testing.T) {
	bad := []struct {
		name, doc, want string
	}{
		{"empty", `{"partitions": []}`, "no partitions"},
		{"dup id", `{"partitions": [{"id":"p","leader":"u"},{"id":"p","leader":"v"}]}`, "duplicate partition id"},
		{"no leader", `{"partitions": [{"id":"p"}]}`, "no leader"},
		{"inverted range", `{"partitions": [{"id":"p","leader":"u","windows":[{"from":5,"to":1}]}]}`, "inverted"},
		{"overlap", `{"partitions": [
			{"id":"a","leader":"u","windows":[{"from":0,"to":5}]},
			{"id":"b","leader":"v","windows":[{"from":5,"to":9}]}]}`, "overlap"},
		{"cell out of range", `{"spatialShards": 4, "partitions": [{"id":"p","leader":"u","spatialCells":[4]}]}`, "out of range"},
		{"dup cell", `{"spatialShards": 4, "partitions": [
			{"id":"a","leader":"u","spatialCells":[1]},
			{"id":"b","leader":"v","spatialCells":[1]}]}`, "owned by both"},
		{"cells with disabled spatial", `{"spatialShards": -1, "partitions": [{"id":"p","leader":"u","spatialCells":[0]}]}`, "disabled"},
	}
	for _, tc := range bad {
		if _, err := Parse([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
	topo, err := Parse([]byte(`{"partitions": [{"id":"p0","leader":"http://a:1"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.WindowMillis != index.DefaultShardWindowMillis || topo.SpatialShards != 8 {
		t.Fatalf("defaults not filled: %+v", topo)
	}
}

func TestOwnerOfKey(t *testing.T) {
	topo := threeWay(t)
	for key, want := range map[int64]string{0: "p0", 7: "p0", 8: "p1", 23: "p2"} {
		if got := topo.OwnerOfKey(key).ID; got != want {
			t.Errorf("key %d: owner %s, want %s", key, got, want)
		}
	}
	// Outside every explicit range: floor-modulo fallback, negative
	// keys included.
	if got := topo.OwnerOfKey(24).ID; got != "p0" {
		t.Errorf("key 24: %s, want p0 (24 mod 3)", got)
	}
	if got := topo.OwnerOfKey(-1).ID; got != "p2" {
		t.Errorf("key -1: %s, want p2 (floorMod(-1,3)=2)", got)
	}
}

func TestOwnerOfRep(t *testing.T) {
	topo := threeWay(t)
	w := topo.WindowMillis
	p := geo.Point{Lat: 40, Lng: 116.3}

	// Normal segment: window-key owner.
	owner, err := topo.OwnerOfRep(rep(p, 9*w, 9*w+1000))
	if err != nil || owner.ID != "p1" {
		t.Fatalf("normal rep: %v %v, want p1", owner, err)
	}
	// Over-long segment: spatial-cell owner, same cell the index uses.
	long := rep(p, 0, 2*w)
	owner, err = topo.OwnerOfRep(long)
	if err != nil {
		t.Fatal(err)
	}
	want := topo.SpatialOwner(index.SpatialCell(p, topo.SpatialShards))
	if owner != want {
		t.Fatalf("over-long rep: owner %s, want %s", owner.ID, want.ID)
	}
	// Guard agrees.
	if err := topo.OwnsRep(owner.ID)(long); err != nil {
		t.Fatalf("OwnsRep(%s) rejected its own rep: %v", owner.ID, err)
	}
	for _, other := range topo.Partitions {
		if other.ID != owner.ID {
			if err := topo.OwnsRep(other.ID)(long); err == nil {
				t.Fatalf("OwnsRep(%s) accepted %s's rep", other.ID, owner.ID)
			}
		}
	}

	// Disabled spatial shards reject over-long reps.
	noSpatial, err := Parse([]byte(`{"spatialShards": -1, "partitions": [{"id":"p0","leader":"u"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noSpatial.OwnerOfRep(rep(p, 0, 2*noSpatial.WindowMillis)); err == nil {
		t.Fatal("over-long rep accepted with spatial shards disabled")
	}
}

func ownerIDs(ps []*Partition) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.ID
	}
	return out
}

func eqIDs(a []string, b ...string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestOwnersForQuery(t *testing.T) {
	topo := threeWay(t)
	w := topo.WindowMillis

	// A query inside p1's range still fans to window floor(start/W)-1;
	// spatial cells are owned by all three, so every partition shows
	// up. Narrow ownership needs a spatial-free topology (below).
	got := ownerIDs(topo.OwnersForQuery(9*w, 9*w+1000))
	if !eqIDs(got, "p0", "p1", "p2") {
		t.Fatalf("query in p1 range with spread spatial cells: %v", got)
	}

	// Spatial cells all on p0: the fan-out shows the real range math.
	narrow, err := Parse([]byte(`{
		"windowMillis": 3600000,
		"partitions": [
			{"id": "p0", "leader": "u", "windows": [{"from": 0, "to": 7}], "spatialCells": [0,1,2,3,4,5,6,7]},
			{"id": "p1", "leader": "v", "windows": [{"from": 8, "to": 15}]},
			{"id": "p2", "leader": "w", "windows": [{"from": 16, "to": 23}]}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	// Query at window 9: visits keys 8..9, both p1's, plus spatial p0.
	if got := ownerIDs(narrow.OwnersForQuery(9*w, 9*w+1000)); !eqIDs(got, "p0", "p1") {
		t.Fatalf("narrow query: %v, want [p0 p1]", got)
	}
	// Range straddling p1/p2 boundary: keys 15..16.
	if got := ownerIDs(narrow.OwnersForQuery(16*w, 16*w+1000)); !eqIDs(got, "p0", "p1", "p2") {
		t.Fatalf("straddle query: %v", got)
	}
	// Uncovered gap (keys 24..26) hits the modulo fallback.
	if got := ownerIDs(narrow.OwnersForQuery(25*w, 26*w+1000)); !eqIDs(got, "p0", "p1", "p2") {
		t.Fatalf("gap query: %v (keys 24,25,26 -> all residues)", got)
	}
	// Huge uncovered span includes everyone without iterating.
	if got := ownerIDs(narrow.OwnersForQuery(math.MinInt64/2, math.MaxInt64/2)); !eqIDs(got, "p0", "p1", "p2") {
		t.Fatalf("huge span: %v", got)
	}
	// The fan-out range must match the index's windowRange exactly,
	// including the floor(start/W)-1 widening.
	lo, hi := index.WindowKeyRange(9*w, 9*w+1000, w)
	if lo != 8 || hi != 9 {
		t.Fatalf("WindowKeyRange = [%d, %d], want [8, 9]", lo, hi)
	}
}

func TestIDBase(t *testing.T) {
	topo := threeWay(t)
	b0, _ := topo.IDBase("p0")
	b1, _ := topo.IDBase("p1")
	b2, _ := topo.IDBase("p2")
	if b0 != 0 || b1 != 1<<48 || b2 != 2<<48 {
		t.Fatalf("id bases: %d %d %d", b0, b1, b2)
	}
	if _, err := topo.IDBase("nope"); err == nil {
		t.Fatal("unknown partition accepted")
	}
}
