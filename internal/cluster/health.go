// Router health: the cluster-level /healthz the obs.HealthSet doc
// always promised a query router. Per-partition checkers probe every
// node and grade what the scatter path can still do — degraded while a
// replica can cover for a dead leader, failing once a partition's
// window ranges have no live owner at all — and a hedge-saturation
// checker flags the regime where every query is paying the hedge.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"fovr/internal/obs"
)

// registerHealthChecks wires the router's checkers: one per partition
// plus the hedge-saturation signal.
func (rt *Router) registerHealthChecks() {
	for _, rp := range rt.parts {
		rt.health.Register("partition:"+rp.part.ID, rt.partitionCheck(rp))
	}
	rt.health.Register("hedging", rt.hedgeCheck())
}

// partitionCheck probes every node of one partition concurrently and
// grades the partition:
//
//   - every node answering        → ok
//   - leader up, replica(s) down  → degraded (less hedge headroom)
//   - leader down, replica up     → degraded (reads hedge to replicas,
//     writes stall until restart-promotion or a topology edit)
//   - no node answering           → failing: the partition's window
//     ranges have no live owner, so scattered queries over them fail
func (rt *Router) partitionCheck(rp *routerPartition) obs.Checker {
	return func() obs.HealthCheck {
		eps := rp.part.Endpoints()
		up := make([]bool, len(eps))
		var wg sync.WaitGroup
		for i := range rp.clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeTimeout)
				defer cancel()
				_, err := rp.clients[i].Healthz(ctx)
				up[i] = err == nil
			}(i)
		}
		wg.Wait()

		check := obs.HealthCheck{
			Component: "partition:" + rp.part.ID,
			State:     obs.HealthOK,
			Details: map[string]any{
				"leader":   rp.part.Leader,
				"replicas": len(rp.part.Replicas),
			},
		}
		live := 0
		for _, ok := range up {
			if ok {
				live++
			}
		}
		check.Details["live"] = live
		switch {
		case live == 0:
			check.State = obs.HealthFailing
			check.Reasons = append(check.Reasons,
				fmt.Sprintf("no live owner: every node of partition %q unreachable, its window ranges are unservable", rp.part.ID))
		case !up[0]:
			check.State = obs.HealthDegraded
			check.Reasons = append(check.Reasons,
				fmt.Sprintf("leader %s unreachable; %d replica(s) serving hedged reads, writes stalled", rp.part.Leader, live))
		case live < len(eps):
			check.State = obs.HealthDegraded
			for i, ok := range up {
				if !ok {
					check.Reasons = append(check.Reasons, fmt.Sprintf("replica %s unreachable", eps[i]))
				}
			}
		}
		return check
	}
}

// hedgeCheck degrades when every query since the last evaluation fired
// a hedge: the cluster still answers, but nothing is answering within
// the latency threshold — typically one node limping rather than dead.
func (rt *Router) hedgeCheck() obs.Checker {
	var lastTotal, lastHedged int64
	var mu sync.Mutex
	return func() obs.HealthCheck {
		mu.Lock()
		defer mu.Unlock()
		total := rt.queriesTotal.Load()
		hedged := rt.queriesHedged.Load()
		dTotal, dHedged := total-lastTotal, hedged-lastHedged
		lastTotal, lastHedged = total, hedged
		check := obs.HealthCheck{
			Component: "hedging",
			State:     obs.HealthOK,
			Details: map[string]any{
				"queries":       dTotal,
				"hedgedQueries": dHedged,
			},
		}
		if dTotal > 0 && dHedged == dTotal {
			check.State = obs.HealthDegraded
			check.Reasons = append(check.Reasons,
				fmt.Sprintf("all %d queries since last check fired hedges: no endpoint answering within %v", dTotal, rt.cfg.HedgeAfter))
		}
		return check
	}
}

// RouterHealthzResponse is the router's /healthz payload.
type RouterHealthzResponse struct {
	obs.HealthReport
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Partitions    int     `json:"partitions"`
}

// handleHealthz mirrors the single-node contract: 200 for ok and
// degraded (the router still serves), 503 for failing.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	report := rt.health.Evaluate()
	resp := RouterHealthzResponse{
		HealthReport:  report,
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Partitions:    len(rt.topo.Partitions),
	}
	code := http.StatusOK
	if report.State == obs.HealthFailing {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, err := json.Marshal(resp)
	if err != nil {
		return
	}
	_, _ = w.Write(data)
}
