// Package cluster composes the repo's two scale-out halves — the
// window/spatial-hash partitioning index.Sharded computes and the
// per-partition replica sets internal/replica ships — into a multi-node
// topology: a partition map assigning shard keys to leader processes,
// and a stateless scatter-gather router (router.go) serving the same
// HTTP surface as a single node.
//
// The partition map speaks in exactly the keys the index computes
// (index.WindowKey / index.SpatialCell — one implementation, exported
// for this purpose), so a representative lands on the same partition
// the single-node index would have placed in the matching shard, and a
// query fans out to precisely the partitions whose shards the
// single-node fan-out would have visited. That is what makes the
// router's merged results byte-identical to one big node.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/segment"
)

// WindowRange is an inclusive range of time-window keys (the
// floor(startMillis/window) values index.Sharded shards by).
type WindowRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// contains reports whether the range holds key.
func (r WindowRange) contains(key int64) bool { return r.From <= key && key <= r.To }

// intersects reports whether the range and [lo, hi] share a key.
func (r WindowRange) intersects(lo, hi int64) bool { return r.From <= hi && lo <= r.To }

// Partition is one shard-owning node group: a writable leader plus its
// read replicas (each running the existing internal/replica set).
type Partition struct {
	// ID names the partition in health reports and errors, e.g. "p0".
	ID string `json:"id"`
	// Leader is the writable node's base URL.
	Leader string `json:"leader"`
	// Replicas are read-replica base URLs, hedge targets for queries.
	Replicas []string `json:"replicas,omitempty"`
	// Windows are the time-window key ranges this partition explicitly
	// owns. Keys matched by no partition's ranges fall back to
	// floor-modulo placement over all partitions.
	Windows []WindowRange `json:"windows,omitempty"`
	// SpatialCells are the spatial-hash cells (over-long segments) this
	// partition owns. Cells assigned to no partition default to the
	// first partition.
	SpatialCells []int `json:"spatialCells,omitempty"`
}

// Endpoints returns the partition's nodes in hedging order: leader
// first, then replicas.
func (p *Partition) Endpoints() []string {
	out := make([]string, 0, 1+len(p.Replicas))
	out = append(out, p.Leader)
	out = append(out, p.Replicas...)
	return out
}

// Topology is the cluster's partition map, loaded from a JSON file and
// served verbatim on the router's /cluster/topology.
type Topology struct {
	// WindowMillis is the time-shard width every partition's index runs
	// with. Zero selects index.DefaultShardWindowMillis. Routing and
	// index sharding must agree on this width; the per-node ownership
	// guards enforce it.
	WindowMillis int64 `json:"windowMillis,omitempty"`
	// SpatialShards sizes the spatial-hash cell space over-long
	// segments route by. Zero selects 8 (the index default); negative
	// disables over-long segments cluster-wide — ingest rejects them —
	// which lets queries skip the spatial fan-out entirely.
	SpatialShards int `json:"spatialShards,omitempty"`
	// Partitions lists the shard owners. Order matters: it defines the
	// floor-modulo fallback placement and the id-base assignment, so
	// reordering partitions re-keys the cluster.
	Partitions []Partition `json:"partitions"`
}

// idBaseShift gives each partition 2^48 ids: partition i assigns ids
// i*2^48+1 upward, so ids stay globally unique without coordination
// and the owning partition is recoverable from any id's top bits.
const idBaseShift = 48

// Load reads and validates a topology file.
func Load(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	return Parse(data)
}

// Parse decodes and validates a topology document.
func Parse(data []byte) (*Topology, error) {
	var t Topology
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("cluster: topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks structural invariants and fills defaults
// (WindowMillis, SpatialShards).
func (t *Topology) Validate() error {
	if t.WindowMillis == 0 {
		t.WindowMillis = index.DefaultShardWindowMillis
	}
	if t.WindowMillis < 0 {
		return fmt.Errorf("cluster: topology: windowMillis %d must be positive", t.WindowMillis)
	}
	if t.SpatialShards == 0 {
		t.SpatialShards = 8
	}
	if len(t.Partitions) == 0 {
		return fmt.Errorf("cluster: topology: no partitions")
	}
	ids := make(map[string]bool, len(t.Partitions))
	type ownedRange struct {
		WindowRange
		id string
	}
	var ranges []ownedRange
	cellOwner := make(map[int]string)
	for i := range t.Partitions {
		p := &t.Partitions[i]
		if p.ID == "" {
			return fmt.Errorf("cluster: topology: partition %d has no id", i)
		}
		if ids[p.ID] {
			return fmt.Errorf("cluster: topology: duplicate partition id %q", p.ID)
		}
		ids[p.ID] = true
		if p.Leader == "" {
			return fmt.Errorf("cluster: topology: partition %q has no leader URL", p.ID)
		}
		for _, r := range p.Windows {
			if r.From > r.To {
				return fmt.Errorf("cluster: topology: partition %q window range [%d, %d] inverted", p.ID, r.From, r.To)
			}
			ranges = append(ranges, ownedRange{r, p.ID})
		}
		for _, c := range p.SpatialCells {
			if t.SpatialShards < 0 {
				return fmt.Errorf("cluster: topology: partition %q assigns spatial cells but spatialShards is disabled", p.ID)
			}
			if c < 0 || c >= t.SpatialShards {
				return fmt.Errorf("cluster: topology: partition %q spatial cell %d out of range [0, %d)", p.ID, c, t.SpatialShards)
			}
			if owner, dup := cellOwner[c]; dup {
				return fmt.Errorf("cluster: topology: spatial cell %d owned by both %q and %q", c, owner, p.ID)
			}
			cellOwner[c] = p.ID
		}
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].From < ranges[j].From })
	for i := 1; i < len(ranges); i++ {
		if ranges[i].From <= ranges[i-1].To {
			return fmt.Errorf("cluster: topology: window ranges overlap: %q [%d, %d] and %q [%d, %d]",
				ranges[i-1].id, ranges[i-1].From, ranges[i-1].To,
				ranges[i].id, ranges[i].From, ranges[i].To)
		}
	}
	return nil
}

// Partition returns the partition named id, or nil.
func (t *Topology) Partition(id string) *Partition {
	for i := range t.Partitions {
		if t.Partitions[i].ID == id {
			return &t.Partitions[i]
		}
	}
	return nil
}

// IDBase returns the segment-id base the named partition's leader must
// run with (server.Config.IDBase): partition index shifted into the
// top bits, so every partition assigns from a disjoint 2^48 id space.
func (t *Topology) IDBase(id string) (uint64, error) {
	for i := range t.Partitions {
		if t.Partitions[i].ID == id {
			return uint64(i) << idBaseShift, nil
		}
	}
	return 0, fmt.Errorf("cluster: topology: unknown partition %q", id)
}

// floorMod is the non-negative remainder, the fallback placement for
// keys outside every explicit window range.
func floorMod(key int64, n int) int {
	m := key % int64(n)
	if m < 0 {
		m += int64(n)
	}
	return int(m)
}

// OwnerOfKey returns the partition owning a time-window key: the one
// whose explicit ranges contain it, else floor-modulo placement.
func (t *Topology) OwnerOfKey(key int64) *Partition {
	for i := range t.Partitions {
		for _, r := range t.Partitions[i].Windows {
			if r.contains(key) {
				return &t.Partitions[i]
			}
		}
	}
	return &t.Partitions[floorMod(key, len(t.Partitions))]
}

// SpatialOwner returns the partition owning a spatial cell: the one
// that lists it, else the first partition.
func (t *Topology) SpatialOwner(cell int) *Partition {
	for i := range t.Partitions {
		for _, c := range t.Partitions[i].SpatialCells {
			if c == cell {
				return &t.Partitions[i]
			}
		}
	}
	return &t.Partitions[0]
}

// OwnerOfRep returns the partition a representative must be ingested
// on: the spatial-cell owner for over-long segments (duration >
// window), the window-key owner otherwise. Over-long segments error
// when the topology disables spatial shards.
func (t *Topology) OwnerOfRep(rep segment.Representative) (*Partition, error) {
	if index.OverLong(rep.StartMillis, rep.EndMillis, t.WindowMillis) {
		if t.SpatialShards < 0 {
			return nil, fmt.Errorf("cluster: segment [%d, %d] longer than window %dms but topology disables spatial shards",
				rep.StartMillis, rep.EndMillis, t.WindowMillis)
		}
		return t.SpatialOwner(index.SpatialCell(rep.FoV.P, t.SpatialShards)), nil
	}
	return t.OwnerOfKey(index.WindowKey(rep.StartMillis, t.WindowMillis)), nil
}

// OwnsRep returns the ownership guard for one partition's leader
// (server.Config.OwnsRep): nil error exactly when this topology routes
// the representative to the named partition.
func (t *Topology) OwnsRep(id string) func(rep segment.Representative) error {
	return func(rep segment.Representative) error {
		owner, err := t.OwnerOfRep(rep)
		if err != nil {
			return err
		}
		if owner.ID != id {
			return fmt.Errorf("owned by partition %q, not %q", owner.ID, id)
		}
		return nil
	}
}

// OwnersForQuery returns, in topology order, every partition a query
// over [startMillis, endMillis] must visit: the owners of the window
// keys in the query's fan-out range (the same floor(start/W)-1 ..
// floor(end/W) rule index.Sharded uses) plus — since every query visits
// the spatial fallback — all spatial-cell owners, unless the topology
// disables spatial shards.
func (t *Topology) OwnersForQuery(startMillis, endMillis int64) []*Partition {
	lo, hi := index.WindowKeyRange(startMillis, endMillis, t.WindowMillis)
	owners := make(map[string]bool)

	// Explicit ranges: interval intersection, span-size independent.
	for i := range t.Partitions {
		for _, r := range t.Partitions[i].Windows {
			if r.intersects(lo, hi) {
				owners[t.Partitions[i].ID] = true
				break
			}
		}
	}
	// Modulo fallback: only keys in [lo, hi] uncovered by every
	// explicit range land here. Walk the uncovered gaps; a gap spanning
	// >= len(Partitions) keys hits every residue, smaller gaps
	// enumerate.
	n := len(t.Partitions)
	var covered []WindowRange
	for i := range t.Partitions {
		covered = append(covered, t.Partitions[i].Windows...)
	}
	sort.Slice(covered, func(i, j int) bool { return covered[i].From < covered[j].From })
	addModRange := func(gapLo, gapHi int64) {
		if gapLo > gapHi {
			return
		}
		if gapHi-gapLo+1 >= int64(n) || gapHi-gapLo < 0 { // width overflow => huge
			for i := range t.Partitions {
				owners[t.Partitions[i].ID] = true
			}
			return
		}
		for k := gapLo; ; k++ {
			owners[t.Partitions[floorMod(k, n)].ID] = true
			if k == gapHi {
				break
			}
		}
	}
	next := lo
	for _, r := range covered {
		if r.To < next {
			continue
		}
		if r.From > hi {
			break
		}
		if r.From > next {
			addModRange(next, r.From-1)
		}
		if r.To >= next {
			next = r.To + 1
		}
		if next > hi {
			break
		}
	}
	if next <= hi {
		addModRange(next, hi)
	}

	// Spatial fallback: every query visits it.
	if t.SpatialShards > 0 {
		hasCells := false
		for i := range t.Partitions {
			if len(t.Partitions[i].SpatialCells) > 0 {
				owners[t.Partitions[i].ID] = true
				hasCells = true
			}
		}
		// Unassigned cells default to the first partition; any cell
		// space not fully covered keeps it in the set.
		assigned := 0
		for i := range t.Partitions {
			assigned += len(t.Partitions[i].SpatialCells)
		}
		if !hasCells || assigned < t.SpatialShards {
			owners[t.Partitions[0].ID] = true
		}
	}

	out := make([]*Partition, 0, len(owners))
	for i := range t.Partitions {
		if owners[t.Partitions[i].ID] {
			out = append(out, &t.Partitions[i])
		}
	}
	return out
}

// SpatialCellFor returns the cluster-level spatial cell a point hashes
// to, for callers that need to display or test placement; -1 when the
// topology disables spatial shards.
func (t *Topology) SpatialCellFor(p geo.Point) int {
	if t.SpatialShards <= 0 {
		return -1
	}
	return index.SpatialCell(p, t.SpatialShards)
}
