// Router end-to-end suites: the differential contract (a 3-partition
// scatter-gather cluster answers byte-identically to one node holding
// the union), partition failover under a query storm (a killed leader's
// replica keeps every query succeeding via hedged reads), and the
// cluster /healthz grading.
package cluster_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"fovr/internal/client"
	"fovr/internal/cluster"
	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/index"
	"fovr/internal/obs"
	"fovr/internal/query"
	"fovr/internal/replica"
	"fovr/internal/segment"
	"fovr/internal/server"
	"fovr/internal/store"
	"fovr/internal/wire"
)

var (
	testCam  = fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}
	testCity = geo.Point{Lat: 40.0, Lng: 116.3}
)

const testWindow = int64(3_600_000) // 1h, the index default

// corpus returns n representative FoVs spread over one day around the
// test city (the bench-corpus idiom: session batches, ~2s segments),
// with ~2% over-long segments to exercise the spatial-cell routing.
func corpus(n int) []wire.Upload {
	rng := rand.New(rand.NewSource(51))
	var uploads []wire.Upload
	for len(uploads)*32 < n {
		base := int64(rng.Intn(86_400_000))
		u := wire.Upload{Provider: fmt.Sprintf("client-%d", len(uploads)%7)}
		for i := 0; i < 32; i++ {
			p := geo.Offset(testCity, rng.Float64()*360, rng.Float64()*5000)
			start := base + int64(i)*2000
			end := start + 1500 + int64(rng.Intn(500))
			if rng.Intn(50) == 0 {
				end = start + 2*testWindow // over-long: spatial fallback
			}
			u.Reps = append(u.Reps, segment.Representative{
				FoV:         fov.FoV{P: p, Theta: rng.Float64() * 360},
				StartMillis: start,
				EndMillis:   end,
			})
		}
		uploads = append(uploads, u)
	}
	return uploads
}

// queries returns the seeded query set (the shard-scaling idiom: 1h
// windows, a few-hundred-meter boxes around the city).
func queries(n int) []query.Query {
	rng := rand.New(rand.NewSource(52))
	out := make([]query.Query, n)
	for i := range out {
		ts := int64(rng.Intn(86_400_000))
		out[i] = query.Query{
			StartMillis:  ts,
			EndMillis:    ts + testWindow,
			Center:       geo.Offset(testCity, rng.Float64()*360, rng.Float64()*4000),
			RadiusMeters: 200 + rng.Float64()*800,
		}
	}
	return out
}

// threePartitionTopology splits the day's 24 window keys three ways and
// spreads the spatial cells, leader URLs to be filled in once the
// httptest servers exist.
func threePartitionTopology(t *testing.T) *cluster.Topology {
	t.Helper()
	topo := &cluster.Topology{
		WindowMillis:  testWindow,
		SpatialShards: 8,
		Partitions: []cluster.Partition{
			{ID: "p0", Leader: "pending", Windows: []cluster.WindowRange{{From: 0, To: 7}}, SpatialCells: []int{0, 1, 2}},
			{ID: "p1", Leader: "pending", Windows: []cluster.WindowRange{{From: 8, To: 15}}, SpatialCells: []int{3, 4, 5}},
			{ID: "p2", Leader: "pending", Windows: []cluster.WindowRange{{From: 16, To: 23}}, SpatialCells: []int{6, 7}},
		},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

// newPartitionLeader builds one partition's writable node: a sharded
// in-memory server wearing the topology's ownership guard and id base.
func newPartitionLeader(t *testing.T, topo *cluster.Topology, id string) (*server.Server, *httptest.Server) {
	t.Helper()
	base, err := topo.IDBase(id)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Camera:    testCam,
		IndexKind: server.IndexKindSharded,
		Registry:  obs.NewRegistry(),
		IDBase:    base,
		OwnsRep:   topo.OwnsRep(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

func newRouter(t *testing.T, topo *cluster.Topology, reg *obs.Registry) *httptest.Server {
	t.Helper()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Topology:     topo,
		HedgeAfter:   50 * time.Millisecond,
		ProbeTimeout: 500 * time.Millisecond,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, req, out any) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, string(respBody)
	}
	if err := json.Unmarshal(respBody, out); err != nil {
		t.Fatalf("%s: %v (%s)", url, err, respBody)
	}
	return resp.StatusCode, ""
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestClusterDifferential pins the merge contract: a 3-partition
// cluster ingested through the router answers the seeded query set —
// box queries and nearest-neighbor — byte-identically to a single
// sharded node holding the union of the partitions' entries.
func TestClusterDifferential(t *testing.T) {
	topo := threePartitionTopology(t)
	leaders := make([]*server.Server, len(topo.Partitions))
	for i := range topo.Partitions {
		srv, ts := newPartitionLeader(t, topo, topo.Partitions[i].ID)
		leaders[i] = srv
		topo.Partitions[i].Leader = ts.URL
	}
	reg := obs.NewRegistry()
	router := newRouter(t, topo, reg)

	// Ingest the corpus through the router with the ordinary client.
	c := client.New(router.URL)
	var total, uploads int
	for _, u := range corpus(3000) {
		ids, err := c.Upload(u)
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != len(u.Reps) {
			t.Fatalf("upload: %d ids for %d reps", len(ids), len(u.Reps))
		}
		for _, id := range ids {
			if id == 0 {
				t.Fatal("upload: unassigned id in response")
			}
		}
		total += len(u.Reps)
		uploads++
	}

	// Every entry must live on the partition the topology assigns, with
	// ids from the partition's disjoint id space.
	union := make([]index.Entry, 0, total)
	seen := make(map[uint64]bool, total)
	for i, srv := range leaders {
		entries := srv.Index().Entries()
		base, _ := topo.IDBase(topo.Partitions[i].ID)
		for _, e := range entries {
			if e.ID <= base || e.ID > base+(1<<48) {
				t.Fatalf("partition %s: id %d outside its base %d", topo.Partitions[i].ID, e.ID, base)
			}
			if seen[e.ID] {
				t.Fatalf("duplicate id %d across partitions", e.ID)
			}
			seen[e.ID] = true
			if err := topo.OwnsRep(topo.Partitions[i].ID)(e.Rep); err != nil {
				t.Fatalf("partition %s holds a rep it does not own: %v", topo.Partitions[i].ID, err)
			}
		}
		union = append(union, entries...)
	}
	if len(union) != total {
		t.Fatalf("union has %d entries, ingested %d", len(union), total)
	}

	// Single-node comparator: one sharded server over the union.
	single, err := server.New(server.Config{
		Camera:    testCam,
		IndexKind: server.IndexKindSharded,
		Registry:  obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)
	if err := single.ResetState(union); err != nil {
		t.Fatal(err)
	}
	singleHTTP := httptest.NewServer(single.Handler())
	t.Cleanup(singleHTTP.Close)

	qs := queries(120)
	for i, q := range qs {
		var routed, direct server.QueryResponse
		if code, msg := postJSON(t, router.URL+"/query", server.QueryRequest{Query: q}, &routed); code != 200 {
			t.Fatalf("query %d via router: %d %s", i, code, msg)
		}
		if code, msg := postJSON(t, singleHTTP.URL+"/query", server.QueryRequest{Query: q}, &direct); code != 200 {
			t.Fatalf("query %d via single node: %d %s", i, code, msg)
		}
		if got, want := marshal(t, routed.Results), marshal(t, direct.Results); !bytes.Equal(got, want) {
			t.Fatalf("query %d (%+v): routed results differ from single node\nrouted: %s\nsingle: %s", i, q, got, want)
		}
	}

	// Nearest-neighbor scatter merges under the same metric.
	for i, q := range qs[:60] {
		req := server.NearestRequest{Center: q.Center, StartMillis: q.StartMillis, EndMillis: q.EndMillis, K: 10}
		var routed, direct server.NearestResponse
		if code, msg := postJSON(t, router.URL+"/nearest", req, &routed); code != 200 {
			t.Fatalf("nearest %d via router: %d %s", i, code, msg)
		}
		if code, msg := postJSON(t, singleHTTP.URL+"/nearest", req, &direct); code != 200 {
			t.Fatalf("nearest %d via single node: %d %s", i, code, msg)
		}
		if got, want := marshal(t, routed.Results), marshal(t, direct.Results); !bytes.Equal(got, want) {
			t.Fatalf("nearest %d: routed results differ\nrouted: %s\nsingle: %s", i, got, want)
		}
	}

	// ?explain=1 sums the partitions' index traversal cost.
	q := qs[0]
	resp, err := http.Post(router.URL+"/query?explain=1", "application/json",
		bytes.NewReader(marshal(t, server.QueryRequest{Query: q})))
	if err != nil {
		t.Fatal(err)
	}
	var explained server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&explained); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if explained.Trace == nil || explained.Trace.NodesVisited == 0 {
		t.Fatalf("explain through router carried no summed trace: %+v", explained.Trace)
	}

	// Uploads sent straight to the wrong leader bounce with 421.
	wrongRep := segment.Representative{FoV: fov.FoV{P: testCity, Theta: 0}, StartMillis: 9 * testWindow, EndMillis: 9*testWindow + 1000}
	owner, err := topo.OwnerOfRep(wrongRep)
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Partitions {
		if topo.Partitions[i].ID == owner.ID {
			continue
		}
		body, _ := wire.EncodeBinary(wire.Upload{Provider: "misroute", Reps: []segment.Representative{wrongRep}})
		resp, err := http.Post(topo.Partitions[i].Leader+"/upload", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMisdirectedRequest {
			t.Fatalf("misrouted upload to %s: status %d, want 421", topo.Partitions[i].ID, resp.StatusCode)
		}
		break
	}
}

// TestClusterHedgedFailover kills one partition's leader mid-query-storm
// and requires every query to keep succeeding via hedged reads against
// the partition's replica, with the hedge counter and the health report
// both showing what happened.
func TestClusterHedgedFailover(t *testing.T) {
	topo := &cluster.Topology{
		WindowMillis:  testWindow,
		SpatialShards: 8,
		Partitions: []cluster.Partition{
			{ID: "p0", Leader: "pending", Windows: []cluster.WindowRange{{From: 0, To: 11}},
				SpatialCells: []int{0, 1, 2, 3, 4, 5, 6, 7}},
			{ID: "p1", Leader: "pending", Windows: []cluster.WindowRange{{From: 12, To: 23}}},
		},
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}

	_, ts0 := newPartitionLeader(t, topo, "p0")
	topo.Partitions[0].Leader = ts0.URL

	// p1: durable leader + replica tailing it (the existing replica
	// set), so the leader can die and reads carry on.
	st1, err := store.Open(store.Options{Dir: t.TempDir(), CheckpointInterval: -1, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	base1, _ := topo.IDBase("p1")
	leader1, err := server.New(server.Config{
		Camera:    testCam,
		IndexKind: server.IndexKindSharded,
		Registry:  obs.NewRegistry(),
		Store:     st1,
		IDBase:    base1,
		OwnsRep:   topo.OwnsRep("p1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(leader1.Handler())
	topo.Partitions[1].Leader = ts1.URL

	replicaSrv, err := server.New(server.Config{
		Camera:    testCam,
		IndexKind: server.IndexKindSharded,
		Registry:  obs.NewRegistry(),
		ReadOnly:  true,
		LeaderURL: ts1.URL,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replicaSrv.Close)
	fetcher := client.NewReplicator(ts1.URL)
	fetcher.RetryDelay = 5 * time.Millisecond
	fol, err := replica.Start(replica.Options{
		Fetch:    fetcher,
		Apply:    replicaSrv,
		Poll:     50 * time.Millisecond,
		Registry: replicaSrv.Registry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fol.Close)
	replicaSrv.AttachFollower(fol)
	tsR := httptest.NewServer(replicaSrv.Handler())
	t.Cleanup(tsR.Close)
	topo.Partitions[1].Replicas = []string{tsR.URL}

	reg := obs.NewRegistry()
	router := newRouter(t, topo, reg)

	c := client.New(router.URL)
	var total int
	for _, u := range corpus(2000) {
		if _, err := c.Upload(u); err != nil {
			t.Fatal(err)
		}
		total += len(u.Reps)
	}
	// Let the replica catch up before the storm, so post-kill reads
	// have the full corpus.
	deadline := time.Now().Add(15 * time.Second)
	for replicaSrv.Index().Len() != leader1.Index().Len() {
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d/%d entries", replicaSrv.Index().Len(), leader1.Index().Len())
		}
		time.Sleep(20 * time.Millisecond)
	}

	qs := queries(90)
	hedgesBefore := reg.Counter("fovr_cluster_hedges_total").Value()
	for i, q := range qs {
		if i == 30 {
			// SIGKILL the p1 leader mid-storm: from here on, every
			// query touching p1 must hedge to the replica and still
			// succeed.
			ts1.Close()
			leader1.Close()
			if err := st1.Close(); err != nil {
				t.Fatal(err)
			}
		}
		var resp server.QueryResponse
		if code, msg := postJSON(t, router.URL+"/query", server.QueryRequest{Query: q}, &resp); code != 200 {
			t.Fatalf("query %d (leader dead: %v): %d %s", i, i >= 30, code, msg)
		}
	}
	if hedges := reg.Counter("fovr_cluster_hedges_total").Value(); hedges <= hedgesBefore {
		t.Fatal("no hedges fired after leader death")
	}

	// Health: p1's leader is gone but its replica serves -> degraded,
	// naming the dead leader.
	var hr cluster.RouterHealthzResponse
	code, _ := getJSON(t, router.URL+"/healthz", &hr)
	if code != http.StatusOK || hr.State != obs.HealthDegraded {
		t.Fatalf("healthz after leader death: code %d state %s, want 200 degraded", code, hr.State)
	}

	// Kill the replica too: p1's window range has no live owner ->
	// failing, 503, and queries over it fail loudly (502) instead of
	// returning a silent partial merge.
	tsR.Close()
	code, _ = getJSON(t, router.URL+"/healthz", &hr)
	if code != http.StatusServiceUnavailable || hr.State != obs.HealthFailing {
		t.Fatalf("healthz with partition dark: code %d state %s, want 503 failing", code, hr.State)
	}
	deadQ := query.Query{StartMillis: 13 * testWindow, EndMillis: 13*testWindow + 1000, Center: testCity, RadiusMeters: 500}
	var resp server.QueryResponse
	if code, _ := postJSON(t, router.URL+"/query", server.QueryRequest{Query: deadQ}, &resp); code != http.StatusBadGateway {
		t.Fatalf("query over dark partition: code %d, want 502", code)
	}
}

func getJSON(t *testing.T, url string, out any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return resp.StatusCode, string(body)
	}
	return resp.StatusCode, ""
}

// TestRouterHealthzOK: a fully-live cluster reports ok, and the
// topology endpoint serves the loaded map.
func TestRouterHealthzOK(t *testing.T) {
	topo := threePartitionTopology(t)
	for i := range topo.Partitions {
		_, ts := newPartitionLeader(t, topo, topo.Partitions[i].ID)
		topo.Partitions[i].Leader = ts.URL
	}
	router := newRouter(t, topo, obs.NewRegistry())

	var hr cluster.RouterHealthzResponse
	if code, msg := getJSON(t, router.URL+"/healthz", &hr); code != 200 || hr.State != obs.HealthOK {
		t.Fatalf("healthz: %d %s %s", code, hr.State, msg)
	}
	if hr.Partitions != 3 {
		t.Fatalf("healthz partitions = %d", hr.Partitions)
	}
	var served cluster.Topology
	if code, _ := getJSON(t, router.URL+"/cluster/topology", &served); code != 200 {
		t.Fatal("topology endpoint failed")
	}
	if len(served.Partitions) != 3 || served.WindowMillis != testWindow {
		t.Fatalf("served topology: %+v", served)
	}
}
