// Package core is the front door of the reproduction: a single System
// type that wires the paper's full pipeline together — real-time FoV
// segmentation on the capture side, the spatio-temporal R-tree index on
// the cloud side, and rank-based retrieval in between — so that an
// application can go from raw sensor samples to ranked video segments in
// three calls:
//
//	sys, _ := core.NewSystem(core.Config{})
//	ids, _ := sys.Contribute("alice", samples)   // segment + index
//	hits, _ := sys.Search(q, 10)                 // ranked retrieval
//
// System is the in-process embodiment of the three-party architecture of
// Section II (provider, cloud, querier); packages server and client
// provide the same pipeline split across HTTP for deployments that want
// separate processes.
package core

import (
	"errors"
	"fmt"
	"sync"

	"fovr/internal/fov"
	"fovr/internal/index"
	"fovr/internal/obs"
	"fovr/internal/query"
	"fovr/internal/rtree"
	"fovr/internal/segment"
	"fovr/internal/wire"
)

// Stage timers, resolved once against the Default registry instead of a
// per-call registry lookup on the ingest/search hot paths.
var (
	insertSpan = obs.NewSpanTimer("index.insert")
	searchSpan = obs.NewSpanTimer("query.search")
)

// Config assembles the pipeline.
type Config struct {
	// Camera is the shared viewing geometry: it drives the similarity
	// measurement, the segmentation, and the retrieval orientation
	// filter. Zero value selects fov.DefaultCamera.
	Camera fov.Camera
	// SegmentThreshold is Algorithm 1's thresh; zero selects 0.5.
	SegmentThreshold float64
	// CircularMean selects circular azimuth averaging for segment
	// abstraction (see segment.Config).
	CircularMean bool
	// IndexOptions tunes the R-tree.
	IndexOptions rtree.Options
	// DefaultMaxResults caps Search when n <= 0; zero selects 20.
	DefaultMaxResults int
}

func (c Config) withDefaults() Config {
	if c.Camera == (fov.Camera{}) {
		c.Camera = fov.DefaultCamera
	}
	if c.SegmentThreshold == 0 {
		c.SegmentThreshold = 0.5
	}
	if c.DefaultMaxResults == 0 {
		c.DefaultMaxResults = 20
	}
	return c
}

// System is the end-to-end content-free retrieval system. It is safe for
// concurrent use.
type System struct {
	cfg Config
	idx *index.RTree

	mu     sync.Mutex
	nextID uint64
}

// NewSystem builds a System, or fails on invalid configuration.
func NewSystem(cfg Config) (*System, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Camera.Validate(); err != nil {
		return nil, err
	}
	if cfg.SegmentThreshold <= 0 || cfg.SegmentThreshold > 1 {
		return nil, fmt.Errorf("core: segment threshold %v out of (0, 1]", cfg.SegmentThreshold)
	}
	idx, err := index.NewRTree(cfg.IndexOptions)
	if err != nil {
		return nil, err
	}
	return &System{cfg: cfg, idx: idx, nextID: 1}, nil
}

// Camera returns the system's viewing geometry.
func (s *System) Camera() fov.Camera { return s.cfg.Camera }

// SegmentConfig returns the segmentation configuration providers should
// capture with.
func (s *System) SegmentConfig() segment.Config {
	return segment.Config{
		Camera:       s.cfg.Camera,
		Threshold:    s.cfg.SegmentThreshold,
		CircularMean: s.cfg.CircularMean,
	}
}

// Contribute ingests a complete capture: the sample stream is segmented
// with Algorithm 1, abstracted to representative FoVs (Eq. 11), and the
// representatives are indexed. It returns the assigned segment ids, one
// per segment in capture order.
func (s *System) Contribute(provider string, samples []fov.Sample) ([]uint64, error) {
	if provider == "" {
		return nil, errors.New("core: empty provider")
	}
	results, err := segment.Split(s.SegmentConfig(), samples)
	if err != nil {
		return nil, err
	}
	return s.Ingest(provider, segment.Representatives(results))
}

// Ingest indexes pre-segmented representatives (the path uploads from
// remote clients take after wire decoding).
func (s *System) Ingest(provider string, reps []segment.Representative) ([]uint64, error) {
	if provider == "" {
		return nil, errors.New("core: empty provider")
	}
	sp := insertSpan.Start()
	defer sp.End()
	s.mu.Lock()
	start := s.nextID
	s.nextID += uint64(len(reps))
	s.mu.Unlock()
	ids := make([]uint64, 0, len(reps))
	for i, rep := range reps {
		e := index.Entry{ID: start + uint64(i), Provider: provider, Rep: rep}
		if err := s.idx.Insert(e); err != nil {
			for _, id := range ids {
				s.idx.Remove(id)
			}
			return nil, fmt.Errorf("core: rep %d: %w", i, err)
		}
		ids = append(ids, e.ID)
	}
	return ids, nil
}

// IngestUpload indexes a wire-format upload.
func (s *System) IngestUpload(u wire.Upload) ([]uint64, error) {
	return s.Ingest(u.Provider, u.Reps)
}

// Search answers a retrieval request with the top n ranked segments
// (n <= 0 selects the configured default).
func (s *System) Search(q query.Query, n int) ([]query.Ranked, error) {
	if n <= 0 {
		n = s.cfg.DefaultMaxResults
	}
	sp := searchSpan.Start()
	defer sp.End()
	return query.Search(s.idx, q, query.Options{Camera: s.cfg.Camera, MaxResults: n})
}

// Forget removes a segment by id (a provider withdrawing a contribution),
// reporting whether it was present.
func (s *System) Forget(id uint64) bool { return s.idx.Remove(id) }

// Len returns the number of indexed segments.
func (s *System) Len() int { return s.idx.Len() }

// Index exposes the underlying index for benchmarks and diagnostics.
func (s *System) Index() *index.RTree { return s.idx }
