package core

import (
	"sync"
	"testing"

	"fovr/internal/fov"
	"fovr/internal/geo"
	"fovr/internal/query"
	"fovr/internal/segment"
	"fovr/internal/trace"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(Config{Camera: fov.Camera{HalfAngleDeg: 30, RadiusMeters: 100}})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewSystem(Config{Camera: fov.Camera{HalfAngleDeg: 200, RadiusMeters: 1}}); err == nil {
		t.Fatal("invalid camera accepted")
	}
	if _, err := NewSystem(Config{SegmentThreshold: 2}); err == nil {
		t.Fatal("invalid threshold accepted")
	}
	s, err := NewSystem(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Camera() != fov.DefaultCamera {
		t.Fatal("camera default not applied")
	}
	if s.SegmentConfig().Threshold != 0.5 {
		t.Fatal("threshold default not applied")
	}
}

func TestContributeAndSearchEndToEnd(t *testing.T) {
	s := newSystem(t)
	samples, err := trace.WalkAhead(trace.DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := s.Contribute("walker", samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || s.Len() != len(ids) {
		t.Fatalf("ids %v, len %d", ids, s.Len())
	}

	target := geo.Offset(trace.ScenarioOrigin, 0, 80)
	hits, err := s.Search(query.Query{
		StartMillis: 0, EndMillis: 60_000, Center: target, RadiusMeters: 10,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no hits for a filmed location")
	}
	if hits[0].Entry.Provider != "walker" {
		t.Fatalf("hit %+v", hits[0])
	}

	// A query in a different year matches nothing.
	hits, err = s.Search(query.Query{
		StartMillis: 9_000_000, EndMillis: 9_100_000, Center: target, RadiusMeters: 10,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 0 {
		t.Fatalf("time filter failed: %d hits", len(hits))
	}
}

func TestContributeValidation(t *testing.T) {
	s := newSystem(t)
	if _, err := s.Contribute("", nil); err == nil {
		t.Fatal("empty provider accepted")
	}
	bad := []fov.Sample{{UnixMillis: 0, P: geo.Point{Lat: 95, Lng: 0}}}
	if _, err := s.Contribute("p", bad); err == nil {
		t.Fatal("invalid sample accepted")
	}
	ids, err := s.Contribute("p", nil)
	if err != nil || len(ids) != 0 {
		t.Fatalf("empty capture: ids=%v err=%v", ids, err)
	}
}

func TestIngestRollsBackOnBadRep(t *testing.T) {
	s := newSystem(t)
	reps := []segment.Representative{
		{FoV: fov.FoV{P: geo.Point{Lat: 40, Lng: 116}}, StartMillis: 0, EndMillis: 1},
		{FoV: fov.FoV{P: geo.Point{Lat: 99, Lng: 0}}}, // invalid
	}
	if _, err := s.Ingest("p", reps); err == nil {
		t.Fatal("invalid rep accepted")
	}
	if s.Len() != 0 {
		t.Fatalf("rollback failed: %d entries", s.Len())
	}
}

func TestForget(t *testing.T) {
	s := newSystem(t)
	samples, _ := trace.Rotation(trace.DefaultConfig)
	ids, err := s.Contribute("p", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Forget(ids[0]) {
		t.Fatal("forget of present id failed")
	}
	if s.Forget(ids[0]) {
		t.Fatal("double forget succeeded")
	}
	if s.Len() != len(ids)-1 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestConcurrentContributors(t *testing.T) {
	s := newSystem(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cfg := trace.DefaultConfig
			cfg.StartMillis = int64(w) * 100_000
			samples, err := trace.Rotation(cfg)
			if err != nil {
				errs <- err
				return
			}
			if _, err := s.Contribute("p", samples); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Index().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All ids unique: Len equals total contributed segments.
	samples, _ := trace.Rotation(trace.DefaultConfig)
	results, _ := segment.Split(s.SegmentConfig(), samples)
	if s.Len() != 8*len(results) {
		t.Fatalf("len %d, want %d", s.Len(), 8*len(results))
	}
}
